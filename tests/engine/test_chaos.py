"""Process-level chaos tests: real pools, killed/hung workers.

Each test scans fault seeds for a :class:`FaultPlan` that marks a
known subset of its job plan (chaos decisions are keyed by job
identity, so tests can precompute exactly which jobs a seed hits),
then runs the process backend and asserts the supervision contract:
the run completes, surviving design points match a fault-free serial
run exactly, and only the marked jobs end up quarantined.
"""

from __future__ import annotations

import time

import pytest

from repro.cli import main
from repro.engine.jobs import capture_job, eval_job
from repro.engine.worker import chaos_identity
from repro.errors import JobError
from repro.experiments.runner import ExperimentContext
from repro.obs import TELEMETRY
from repro.resilience import FAULTS
from repro.resilience.faults import FaultInjector, FaultPlan

WL = "wolf-640x480"
SCALE = 0.125

pytestmark = pytest.mark.filterwarnings("ignore::UserWarning")


def make_ctx(**kwargs):
    return ExperimentContext(scale=SCALE, frames=1, workloads=(WL,), **kwargs)


_DECIDERS = {
    "kill": lambda probe, identity: probe.should_kill_worker(identity),
    "hang": lambda probe, identity: probe.should_hang_worker(identity),
    "corrupt": lambda probe, identity: probe.chaos_decision(
        "chaos.chunk_corrupt", identity, probe.plan.chunk_corrupt_rate
    ),
}


def _scan_seed(evals, site, *, want, seeds=range(500), **chaos):
    """First seed whose chaos marks over ``evals`` satisfy ``want``.

    The capture job must always stay unmarked — chaos on the capture
    wave would quarantine every dependent eval and the test could no
    longer attribute failures to the jobs it planned.
    """
    cap_identity = chaos_identity(capture_job(WL, 0))
    probe = FaultInjector()
    decide = _DECIDERS[site]
    for seed in seeds:
        probe.configure(FaultPlan(seed=seed).with_chaos(**chaos))
        marks = [decide(probe, chaos_identity(job)) for job in evals]
        if want(marks) and not decide(probe, cap_identity):
            return seed, marks
    pytest.fail(f"no seed in {seeds!r} marks {site} jobs as required")


def _serial_reference(plan):
    """Fault-free serial metrics for every job in ``plan``."""
    FAULTS.reset()
    ctx = make_ctx()
    ctx.execute(plan)
    return {
        job: ctx.frame_metrics(job.workload, job.frame, job.scenario,
                               job.threshold)
        for job in plan
    }


@pytest.fixture
def telemetry():
    TELEMETRY.reset()
    TELEMETRY.enabled = True
    yield TELEMETRY
    TELEMETRY.enabled = False
    TELEMETRY.reset()


class TestWorkerKill:
    def test_killed_workers_quarantine_only_marked_jobs(
        self, tmp_path, telemetry
    ):
        plan = [eval_job(WL, 0, "patu", t) for t in (0.2, 0.4, 0.6, 0.8)]
        seed, marks = _scan_seed(
            plan, "kill", kill=0.3,
            want=lambda m: any(m) and not all(m),
        )
        reference = _serial_reference(plan)

        FAULTS.configure(FaultPlan(seed=seed).with_chaos(kill=0.3))
        ctx = make_ctx(jobs=2, job_timeout=30.0,
                       capture_cache=tmp_path / "captures")
        report = ctx.execute(plan)

        assert report.planned == len(plan)
        assert report.failed == sum(marks)
        assert report.executed == len(plan) - sum(marks)
        for job, marked in zip(plan, marks):
            if marked:
                with pytest.raises(JobError) as excinfo:
                    ctx.frame_metrics(WL, 0, job.scenario, job.threshold)
                assert excinfo.value.error_type == "WorkerCrashError"
                assert "quarantined" in str(excinfo.value)
            else:
                # survivors are byte-identical to the fault-free
                # serial run — supervision never degrades results
                metrics = ctx.frame_metrics(WL, 0, job.scenario,
                                            job.threshold)
                assert metrics == reference[job]
        assert telemetry.counter_value("resilience.worker_restarts") > 0
        assert telemetry.counter_value("resilience.pool_rebuilds") > 0
        assert (telemetry.counter_value("resilience.jobs_quarantined")
                == sum(marks))

    def test_quarantined_jobs_become_failure_records(self, tmp_path):
        plan = [eval_job(WL, 0, "patu", t) for t in (0.2, 0.4, 0.6, 0.8)]
        seed, marks = _scan_seed(
            plan, "kill", kill=0.3,
            want=lambda m: any(m) and not all(m),
        )
        FAULTS.configure(FaultPlan(seed=seed).with_chaos(kill=0.3))
        ctx = make_ctx(jobs=2, job_timeout=30.0,
                       capture_cache=tmp_path / "captures")
        ctx.execute(plan)
        # Aggregate the way experiment modules do: each replayed
        # quarantine becomes a FailureRecord footer, not an abort.
        for job in plan:
            with ctx.isolate(WL, 0):
                ctx.frame_metrics(WL, 0, job.scenario, job.threshold)
        records = ctx.drain_failures()
        assert len(records) == sum(marks)
        for record in records:
            assert record.error_type == "WorkerCrashError"
            assert "quarantined" in record.message


class TestWorkerHang:
    def test_hung_worker_is_reaped_within_the_deadline(
        self, tmp_path, telemetry
    ):
        plan = [eval_job(WL, 0, "patu", t) for t in (0.3, 0.7)]
        seed, marks = _scan_seed(
            plan, "hang", hang=0.4,
            want=lambda m: sum(m) == 1,
        )
        reference = _serial_reference(plan)

        # Pre-warm the store so the chaos run only executes evals and
        # the hang hits the job we marked, not a capture.
        cache = tmp_path / "captures"
        warm = make_ctx(capture_cache=cache)
        warm.execute(plan)

        FAULTS.configure(FaultPlan(seed=seed).with_chaos(hang=0.4))
        ctx = make_ctx(jobs=2, job_timeout=1.0, capture_cache=cache)
        started = time.monotonic()
        report = ctx.execute(plan)
        elapsed = time.monotonic() - started

        assert elapsed < 30.0  # not the 3600s the worker slept for
        assert report.failed == 1
        hung = plan[marks.index(True)]
        survivor = plan[marks.index(False)]
        with pytest.raises(JobError) as excinfo:
            ctx.frame_metrics(WL, 0, hung.scenario, hung.threshold)
        assert excinfo.value.error_type == "WorkerTimeoutError"
        assert "deadline" in str(excinfo.value)
        metrics = ctx.frame_metrics(WL, 0, survivor.scenario,
                                    survivor.threshold)
        assert metrics == reference[survivor]
        assert telemetry.counter_value("resilience.deadline_expirations") > 0


class TestChunkCorruption:
    def test_corrupted_payloads_are_quarantined_not_merged(
        self, tmp_path, telemetry
    ):
        plan = [eval_job(WL, 0, "patu", t) for t in (0.2, 0.4, 0.6, 0.8)]
        # Mark every eval: whatever job ends a chunk, its payload is
        # mangled, so the run must quarantine the entire eval wave
        # while the (unmarked) capture wave still lands in the store.
        seed, _marks = _scan_seed(
            plan, "corrupt", corrupt=0.8, want=all,
        )
        FAULTS.configure(FaultPlan(seed=seed).with_chaos(corrupt=0.8))
        cache = tmp_path / "captures"
        ctx = make_ctx(jobs=2, job_timeout=30.0, capture_cache=cache)
        report = ctx.execute(plan)

        assert report.failed == len(plan)
        for job in plan:
            with pytest.raises(JobError) as excinfo:
                ctx.frame_metrics(WL, 0, job.scenario, job.threshold)
            assert excinfo.value.error_type == "ChunkCorruptionError"
        assert telemetry.counter_value("resilience.corrupt_chunks") > 0
        assert ctx.capture_store_stats().writes >= 1  # capture survived


class TestChaosCli:
    def test_total_worker_loss_still_exits_zero(self, tmp_path, capsys):
        out = tmp_path / "fig5.txt"
        rc = main([
            "experiment", "fig5",
            "--workloads", WL, "--frames", "1", "--scale", str(SCALE),
            "--jobs", "2", "--chaos-worker-kill", "1.0",
            "--job-timeout", "60",
            "--capture-cache", str(tmp_path / "captures"),
            "--out", str(out),
        ])
        captured = capsys.readouterr()
        assert rc == 0
        assert out.exists()
        assert "process chaos on:" in captured.err
        assert "chaos:" in captured.err
        assert "quarantined" in captured.err
