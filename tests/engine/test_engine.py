"""Engine execution tests: serial backend, warm store, parallel determinism."""

import pytest

from repro.engine.jobs import eval_job
from repro.errors import JobError
from repro.experiments import fig17_threshold
from repro.experiments.runner import ExperimentContext, format_table
from repro.obs import TELEMETRY

WORKLOAD = "wolf-640x480"


def make_ctx(workloads=(WORKLOAD,), **kwargs):
    return ExperimentContext(
        scale=0.0625, frames=1, workloads=workloads, **kwargs
    )


def small_plan():
    return [
        eval_job(WORKLOAD, 0, "baseline", 1.0),
        eval_job(WORKLOAD, 0, "patu", 0.4),
    ]


@pytest.fixture
def telemetry():
    TELEMETRY.reset()
    TELEMETRY.enabled = True
    yield TELEMETRY
    TELEMETRY.enabled = False
    TELEMETRY.reset()


class TestSerialBackend:
    def test_execute_dedupes_and_counts(self):
        ctx = make_ctx()
        report = ctx.execute(small_plan() + small_plan())
        assert report.planned == 2
        assert report.executed == 2
        assert report.failed == 0

    def test_reexecution_is_all_cache_hits(self):
        ctx = make_ctx()
        ctx.execute(small_plan())
        report = ctx.execute(small_plan())
        assert report.skipped == 2
        assert report.executed == 0

    def test_aggregation_after_execute_is_pure_cache_read(self, telemetry):
        ctx = make_ctx()
        ctx.execute(small_plan())
        telemetry.reset()
        m = ctx.frame_metrics(WORKLOAD, 0, "patu", 0.4)
        assert m["cycles"] > 0
        assert telemetry.counter_value("experiment.evaluations") == 0
        assert telemetry.counter_value("session.capture_frames") == 0

    def test_failed_job_is_parked_and_replayed(self):
        ctx = make_ctx()
        bad = eval_job("no-such-game-1x1", 0, "patu", 0.4)
        report = ctx.execute([bad])
        assert report.failed == 1
        with pytest.raises(JobError) as excinfo:
            ctx.frame_metrics("no-such-game-1x1", 0, "patu", 0.4)
        assert excinfo.value.error_type == "WorkloadError"


class TestWarmCaptureStore:
    def test_warm_run_renders_nothing(self, tmp_path, telemetry):
        cache = tmp_path / "captures"
        cold = make_ctx(capture_cache=cache)
        cold.execute(small_plan())
        cold_metrics = cold.frame_metrics(WORKLOAD, 0, "patu", 0.4)
        assert cold.capture_store_stats().writes == 1

        # Fresh context, same store: everything must come from disk.
        telemetry.reset()
        warm = make_ctx(capture_cache=cache)
        warm.execute(small_plan())
        warm_metrics = warm.frame_metrics(WORKLOAD, 0, "patu", 0.4)
        assert telemetry.counter_value("session.capture_frames") == 0
        assert telemetry.counter_value("experiment.captures") == 0
        stats = warm.capture_store_stats()
        assert stats.hits >= 1 and stats.writes == 0
        assert warm_metrics == cold_metrics


class TestParallelDeterminism:
    def test_jobs4_table_matches_serial(self, tmp_path):
        """The satellite guarantee: ``--jobs 4`` output is byte-identical
        to serial output on a two-workload sweep."""
        workloads = (WORKLOAD, "HL2-640x480")
        serial = make_ctx(workloads=workloads)
        parallel = make_ctx(
            workloads=workloads, jobs=4,
            capture_cache=tmp_path / "captures",
        )
        table_serial = format_table(fig17_threshold.run(serial))
        table_parallel = format_table(fig17_threshold.run(parallel))
        assert table_parallel == table_serial
        assert parallel.engine.report.executed > 0

    def test_parallel_failures_match_serial(self, tmp_path):
        bad = eval_job("no-such-game-1x1", 0, "patu", 0.4)
        serial = make_ctx()
        serial.execute([bad])
        parallel = make_ctx(jobs=2, capture_cache=tmp_path / "captures")
        parallel.execute([bad])
        for ctx in (serial, parallel):
            with pytest.raises(JobError) as excinfo:
                ctx.frame_metrics("no-such-game-1x1", 0, "patu", 0.4)
            assert excinfo.value.error_type == "WorkloadError"
