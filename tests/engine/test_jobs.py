"""Tests for the typed experiment work units."""

import pytest

from repro.engine.jobs import (
    DEFAULT_CONFIG,
    KIND_CAPTURE,
    KIND_EVAL,
    CaptureVariant,
    ConfigKey,
    EvalJob,
    capture_job,
    dedupe_jobs,
    eval_job,
)
from repro.errors import ExperimentError
from repro.resilience.checkpoint import KEY_FIELDS


class TestEvalJob:
    def test_value_semantics(self):
        a = eval_job("wolf-640x480", 0, "patu", 0.4)
        b = eval_job("wolf-640x480", 0, "patu", 0.4)
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_distinct_design_points_differ(self):
        a = eval_job("wolf-640x480", 0, "patu", 0.4)
        assert a != eval_job("wolf-640x480", 0, "patu", 0.6)
        assert a != eval_job("wolf-640x480", 1, "patu", 0.4)
        assert a != eval_job(
            "wolf-640x480", 0, "patu", 0.4, config=ConfigKey(llc_scale=2)
        )

    def test_rejects_unknown_kind(self):
        with pytest.raises(ExperimentError, match="kind"):
            EvalJob("w", 0, "patu", 0.4, kind="bogus")

    def test_rejects_negative_frame(self):
        with pytest.raises(ExperimentError, match="frame"):
            eval_job("w", -1, "patu", 0.4)

    def test_capture_job_kind(self):
        job = capture_job("w", 2)
        assert job.kind == KIND_CAPTURE
        assert eval_job("w", 2, "patu", 0.4).kind == KIND_EVAL

    def test_capture_key_carries_variant(self):
        config = ConfigKey(max_anisotropy=4, compressed=True)
        job = eval_job("w", 1, "patu", 0.4, config=config)
        assert job.capture_key() == (
            "w", 1, CaptureVariant(max_anisotropy=4, compressed=True),
        )

    def test_evaluation_knobs_do_not_change_capture_key(self):
        plain = eval_job("w", 0, "patu", 0.4)
        tuned = eval_job(
            "w", 0, "patu", 0.4,
            config=ConfigKey(stage2_threshold=0.2, hash_entries=8,
                             llc_scale=2, software=True),
        )
        assert plain.capture_key() == tuned.capture_key()


class TestMetricsKey:
    def test_layout_matches_checkpoint_schema(self):
        job = eval_job(
            "wolf-640x480", 3, "patu", 0.4,
            config=ConfigKey(
                llc_scale=2, tc_scale=4, stage2_threshold=0.25,
                hash_entries=8, max_anisotropy=4, compressed=True,
                software=False,
            ),
        )
        key = job.metrics_key()
        assert len(key) == len(KEY_FIELDS)
        named = dict(zip(KEY_FIELDS, key))
        assert named == {
            "workload": "wolf-640x480",
            "frame": 3,
            "scenario": "patu",
            "threshold": 0.4,
            "llc_scale": 2,
            "tc_scale": 4,
            "stage2_threshold": 0.25,
            "hash_entries": 8,
            "max_anisotropy": 4,
            "compressed": True,
            "software": False,
        }

    def test_threshold_rounding_absorbs_float_noise(self):
        a = eval_job("w", 0, "patu", 0.1 + 0.2)
        b = eval_job("w", 0, "patu", 0.3)
        assert a.metrics_key() == b.metrics_key()

    def test_default_config_keys(self):
        key = eval_job("w", 0, "baseline", 1.0).metrics_key()
        assert key == ("w", 0, "baseline", 1.0, 1, 1, None, 16, None,
                       False, False)


class TestConfigKey:
    def test_variant_projection(self):
        config = ConfigKey(max_anisotropy=8, compressed=True, llc_scale=4)
        assert config.variant() == CaptureVariant(
            max_anisotropy=8, compressed=True
        )
        assert DEFAULT_CONFIG.variant() == CaptureVariant()


class TestDedupe:
    def test_preserves_first_occurrence_order(self):
        a = eval_job("w", 0, "patu", 0.2)
        b = eval_job("w", 0, "patu", 0.4)
        c = eval_job("w", 0, "baseline", 1.0)
        assert dedupe_jobs([b, a, b, c, a, b]) == [b, a, c]

    def test_empty(self):
        assert dedupe_jobs([]) == []
