"""Tests for the remote socket-worker backend (hermetic fakes).

The pool under test never spawns real worker subprocesses here: fake
workers implemented as in-process threads speak the wire protocol, so
the tests pin down framing, handshake and failure semantics without
paying session-warmup cost. End-to-end coverage of real ``repro
worker`` subprocesses lives in the CI serve-smoke job
(``benchmarks/service_bench.py --backend remote``).
"""

import pickle
import socket
import struct
import threading
import time

import pytest

from concurrent.futures.process import BrokenProcessPool

from repro.config import GpuConfig
from repro.engine.remote import (
    RemoteWorkerError,
    RemoteWorkerPool,
    _portable,
    recv_frame,
    send_frame,
)
from repro.engine.worker import WorkerSpec


def _spec(tmp_path) -> WorkerSpec:
    return WorkerSpec(
        base_config=GpuConfig(), scale=0.1, store_root=str(tmp_path),
    )


class TestFraming:
    def test_roundtrip(self):
        a, b = socket.socketpair()
        with a, b:
            send_frame(a, {"x": [1, 2, 3]})
            assert recv_frame(b) == {"x": [1, 2, 3]}

    def test_eof_on_closed_peer(self):
        a, b = socket.socketpair()
        with b:
            a.close()
            with pytest.raises(EOFError):
                recv_frame(b)

    def test_oversized_frame_rejected(self):
        a, b = socket.socketpair()
        with a, b:
            a.sendall(struct.pack(">Q", 1 << 40))
            with pytest.raises(EOFError, match="oversized"):
                recv_frame(b)

    def test_portable_wraps_unpicklable_exceptions(self):
        class Unpicklable(Exception):
            def __reduce__(self):
                raise TypeError("nope")

        shipped = _portable(Unpicklable("boom"))
        assert isinstance(shipped, RuntimeError)
        assert "Unpicklable" in str(shipped)
        pickle.dumps(shipped)

        plain = ValueError("fine")
        assert _portable(plain) is plain


def _free_port() -> int:
    probe = socket.create_server(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


class _FakeWorker(threading.Thread):
    """An in-process peer speaking the worker protocol.

    ``die_after`` ends the connection abruptly after N completed tasks
    — the wire-level signature of a chaos-killed worker.
    """

    def __init__(self, port: int, *, ready: bool = True,
                 die_after: "int | None" = None) -> None:
        super().__init__(daemon=True)
        self.port = port
        self.ready = ready
        self.die_after = die_after
        self.spec = None

    def _dial(self) -> socket.socket:
        # The worker thread may dial before the pool binds its
        # listener; a refused connection means "not yet", not failure.
        deadline = time.monotonic() + 10
        while True:
            try:
                return socket.create_connection(
                    ("127.0.0.1", self.port), timeout=10
                )
            except ConnectionRefusedError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.02)

    def run(self) -> None:
        sock = self._dial()
        try:
            self.spec = recv_frame(sock)
            if not self.ready:
                send_frame(sock, ("init_error", RuntimeError("bad init")))
                return
            send_frame(sock, ("ready", 4242))
            done = 0
            while True:
                if self.die_after is not None and done >= self.die_after:
                    return  # abrupt close mid-protocol: a dead worker
                try:
                    fn, args = recv_frame(sock)
                except (EOFError, OSError):
                    return
                try:
                    send_frame(sock, ("ok", fn(*args)))
                except Exception as exc:  # noqa: BLE001 — wire protocol
                    send_frame(sock, ("exc", exc))
                done += 1
        finally:
            sock.close()


def _make_pool(tmp_path, workers: "list[_FakeWorker]", port: int):
    for worker in workers:
        worker.start()
    return RemoteWorkerPool(
        _spec(tmp_path), len(workers), port=port, spawn=False,
        connect_timeout=10.0,
    )


def _add(a, b):
    return a + b


def _raise(message):
    raise ValueError(message)


_GATE = threading.Event()
_STARTED = threading.Event()


def _block():
    _STARTED.set()
    _GATE.wait(timeout=10)
    return "released"


class TestPool:
    def test_handshake_ships_spec_and_results_flow(self, tmp_path):
        port = _free_port()
        worker = _FakeWorker(port)
        pool = _make_pool(tmp_path, [worker], port)
        try:
            assert pool.submit(_add, 2, 3).result(timeout=10) == 5
            assert isinstance(worker.spec, WorkerSpec)
            assert worker.spec.store_root == str(tmp_path)
        finally:
            pool.shutdown()

    def test_task_exception_travels_as_exception(self, tmp_path):
        port = _free_port()
        pool = _make_pool(tmp_path, [_FakeWorker(port)], port)
        try:
            with pytest.raises(ValueError, match="boom"):
                pool.submit(_raise, "boom").result(timeout=10)
            # the worker survives a task exception
            assert pool.submit(_add, 1, 1).result(timeout=10) == 2
        finally:
            pool.shutdown()

    def test_failed_init_raises_typed_error(self, tmp_path):
        port = _free_port()
        with pytest.raises(RemoteWorkerError, match="failed to initialize"):
            _make_pool(tmp_path, [_FakeWorker(port, ready=False)], port)

    def test_nobody_connects_raises_typed_error(self, tmp_path):
        port = _free_port()
        with pytest.raises(RemoteWorkerError, match="connected within"):
            RemoteWorkerPool(
                _spec(tmp_path), 1, port=port, spawn=False,
                connect_timeout=0.2,
            )

    def test_dead_worker_breaks_pool_like_process_pool(self, tmp_path):
        """A worker dying mid-task must poison the whole pool with
        BrokenProcessPool — the exact signal ChunkSupervisor's rebuild
        path already handles for the fork backend."""
        port = _free_port()
        pool = _make_pool(tmp_path, [_FakeWorker(port, die_after=1)], port)
        try:
            assert pool.submit(_add, 1, 1).result(timeout=10) == 2
            doomed = pool.submit(_add, 2, 2)
            with pytest.raises(BrokenProcessPool):
                doomed.result(timeout=10)
            assert pool.broken
            with pytest.raises(BrokenProcessPool):
                pool.submit(_add, 3, 3)
        finally:
            pool.terminate()

    def test_broken_pool_fails_queued_futures(self, tmp_path):
        port = _free_port()
        _GATE.clear()
        _STARTED.clear()
        pool = _make_pool(tmp_path, [_FakeWorker(port)], port)
        try:
            blocker = pool.submit(_block)  # occupies the only worker
            assert _STARTED.wait(timeout=10)
            queued = pool.submit(_add, 1, 1)  # sits in the task queue
            pool._mark_broken()
            with pytest.raises(BrokenProcessPool):
                queued.result(timeout=10)
            _GATE.set()
            blocker.result(timeout=10)  # in-flight task still completes
        finally:
            pool.terminate()
