"""Scheduler accounting invariants and dispatch-chunking properties.

Regression tests for the cross-process dedup leak: synthetic capture
jobs the wave planner adds on behalf of eval jobs must never count
toward ``executed``, so ``executed == planned - skipped - failed``
holds on the process backend exactly as it does serially.
"""

from types import SimpleNamespace

import pytest

from repro.engine.jobs import eval_job
from repro.engine.scheduler import _MAX_POOLS, _POOLS, Engine, shutdown_pools
from repro.experiments import fig17_threshold
from repro.experiments.runner import ExperimentContext, format_table

WORKLOAD = "wolf-640x480"


def make_ctx(**kwargs):
    return ExperimentContext(
        scale=0.0625, frames=1, workloads=(WORKLOAD,), **kwargs
    )


class TestExecutedEqualsPlanned:
    @pytest.mark.parametrize("jobs", [2, 4])
    def test_parallel_sweep_counts_every_planned_job_once(self, tmp_path, jobs):
        """The dedup-leak regression: synthetic capture jobs used to be
        merged as executed, inflating ``executed`` past ``planned``."""
        ctx = make_ctx(jobs=jobs, capture_cache=tmp_path / "captures")
        fig17_threshold.run(ctx)
        report = ctx.engine.report
        assert report.failed == 0
        assert report.executed == report.planned - report.skipped
        assert report.executed <= report.planned

    def test_warm_store_run_fuses_waves_and_still_balances(self, tmp_path):
        """Second run over a populated store takes the fused single-wave
        path (no renders to race); accounting must be unchanged."""
        store = tmp_path / "captures"
        cold = make_ctx(jobs=2, capture_cache=store)
        cold_table = format_table(fig17_threshold.run(cold))
        warm = make_ctx(jobs=2, capture_cache=store)
        warm_table = format_table(fig17_threshold.run(warm))
        assert warm_table == cold_table
        report = warm.engine.report
        assert report.failed == 0
        assert report.executed == report.planned - report.skipped

    def test_failures_count_against_planned_not_executed(self, tmp_path):
        ctx = make_ctx(jobs=2, capture_cache=tmp_path / "captures")
        plan = [
            eval_job(WORKLOAD, 0, "patu", 0.4),
            eval_job("no-such-game-1x1", 0, "patu", 0.4),
        ]
        report = ctx.execute(plan)
        assert report.planned == 2
        assert report.executed == 1
        assert report.failed == 1


class TestSharedPools:
    def test_registry_is_bounded_and_clearable(self, tmp_path):
        for i in range(_MAX_POOLS + 1):
            ctx = make_ctx(jobs=2, capture_cache=tmp_path / f"captures{i}")
            ctx.execute([eval_job(WORKLOAD, 0, "patu", 0.4)])
        assert len(_POOLS) <= _MAX_POOLS
        shutdown_pools()
        assert not _POOLS


class TestAffineChunks:
    def _engine(self, jobs):
        return Engine(SimpleNamespace(jobs=jobs))

    def _wave(self, spec):
        """``spec`` maps a frame index to how many jobs share its capture."""
        wave = []
        for frame, width in spec:
            wave.extend(
                (eval_job(WORKLOAD, frame, "patu", 0.1 * k), True)
                for k in range(width)
            )
        return wave

    def test_planned_order_is_preserved(self):
        wave = self._wave([(0, 5), (1, 3), (2, 7), (3, 1)])
        chunks = self._engine(4)._affine_chunks(wave)
        flat = [entry for chunk in chunks for entry in chunk]
        assert flat == wave

    def test_chunks_cover_all_workers(self):
        wave = self._wave([(0, 16)])
        chunks = self._engine(4)._affine_chunks(wave)
        assert len(chunks) >= 4
        assert all(chunk for chunk in chunks)

    def test_small_runs_coalesce_instead_of_fragmenting(self):
        # 12 single-job captures on 2 workers: chunks must batch runs,
        # not ship one job per round-trip.
        wave = self._wave([(f, 1) for f in range(12)])
        chunks = self._engine(2)._affine_chunks(wave)
        assert len(chunks) <= 6

    def test_shared_capture_runs_stay_together_when_possible(self):
        # Two fat runs on two workers: each run should map to whole
        # chunks, never interleave with the other capture's jobs.
        wave = self._wave([(0, 8), (1, 8)])
        chunks = self._engine(2)._affine_chunks(wave)
        for chunk in chunks:
            keys = {entry[0].capture_key() for entry in chunk}
            assert len(keys) == 1
