"""Tests for the sharded capture store: layout, read-through, LRU."""

import os

import pytest

from repro.engine.capture_store import (
    CaptureStore,
    ShardedCaptureStore,
    capture_spec,
    detect_shard_prefix,
    make_store,
    spec_digest,
)
from repro.errors import PipelineError

SPEC_KWARGS = dict(scale=1.0, tile_size=16, max_anisotropy=16, compressed=False)


def _spec(workload: str, frame: int = 0):
    return capture_spec(workload, frame, **SPEC_KWARGS)


@pytest.fixture
def store(tmp_path):
    return ShardedCaptureStore(tmp_path / "captures", prefix=1)


class TestLayout:
    def test_entry_lands_in_digest_prefix_shard(self, store, capture):
        spec = _spec("a")
        path = store.put(spec, capture)
        assert path.parent.name == spec_digest(spec)[:1]
        assert path.parent.parent == store.root

    def test_prefix_widths(self, tmp_path, capture):
        for prefix in (1, 2, 4):
            root = tmp_path / f"p{prefix}"
            wide = ShardedCaptureStore(root, prefix=prefix)
            spec = _spec("a")
            assert wide.put(spec, capture).parent.name == (
                spec_digest(spec)[:prefix]
            )

    @pytest.mark.parametrize("prefix", [0, 5, -1])
    def test_bad_prefix_rejected(self, tmp_path, prefix):
        with pytest.raises(PipelineError):
            ShardedCaptureStore(tmp_path, prefix=prefix)

    def test_len_spans_shards_and_flat_entries(self, store, capture):
        store.put(_spec("a"), capture)
        store.put(_spec("b"), capture)
        # plant one flat legacy entry
        flat = store.root / "legacy-f0-0000000000000000.npz"
        flat.parent.mkdir(parents=True, exist_ok=True)
        flat.write_bytes(b"x")
        assert len(store) == 3


class TestReadThrough:
    def test_home_hit(self, store, capture):
        spec = _spec("a")
        store.put(spec, capture)
        assert store.get(spec) is not None
        assert store.stats.hits == 1 and store.stats.readthrough == 0

    def test_flat_legacy_entry_found_and_promoted(self, store, capture):
        """An entry written by the old flat layout is found by lookup
        and migrated into its home shard on first hit."""
        spec = _spec("a")
        home = store.path_for(spec)
        flat_store = CaptureStore(store.root)
        flat_store.put(spec, capture)
        assert (store.root / home.name).exists()

        assert store.get(spec) is not None
        assert store.stats.readthrough == 1
        assert home.exists()
        assert not (store.root / home.name).exists()  # promoted away

    def test_foreign_shard_entry_found_and_promoted(self, store, capture):
        spec = _spec("a")
        home = store.path_for(spec)
        store.put(spec, capture)
        foreign = store.root / ("0" if home.parent.name != "0" else "1")
        foreign.mkdir()
        os.replace(home, foreign / home.name)

        assert store.get(spec) is not None
        assert store.stats.readthrough == 1
        assert home.exists() and not (foreign / home.name).exists()

    def test_true_miss_counts_once(self, store):
        assert store.get(_spec("nothing")) is None
        assert store.stats.misses == 1 and store.stats.readthrough == 0


class TestEviction:
    def _sized_put(self, store, capture, name, mtime):
        spec = _spec(name)
        path = store.put(spec, capture)
        os.utime(path, (mtime, mtime))
        return spec, path

    def test_prune_evicts_oldest_first(self, store, capture):
        _, oldest = self._sized_put(store, capture, "a", 1_000)
        _, newer = self._sized_put(store, capture, "b", 2_000)
        entry_bytes = oldest.stat().st_size
        evicted, freed = store.prune(max_bytes=entry_bytes)
        assert evicted == 1 and freed == entry_bytes
        assert not oldest.exists() and newer.exists()
        assert store.stats.evictions == 1

    def test_hit_refreshes_recency(self, store, capture):
        spec_a, path_a = self._sized_put(store, capture, "a", 1_000)
        _, path_b = self._sized_put(store, capture, "b", 2_000)
        assert store.get(spec_a) is not None  # touch: now newest
        store.prune(max_bytes=path_a.stat().st_size)
        assert path_a.exists() and not path_b.exists()

    def test_bounded_put_prunes_but_keeps_fresh_entry(self, tmp_path, capture):
        entry_bytes = ShardedCaptureStore(tmp_path / "probe", prefix=1).put(
            _spec("probe"), capture
        ).stat().st_size
        store = ShardedCaptureStore(
            tmp_path / "captures", prefix=1, max_bytes=entry_bytes
        )
        self_sized = store.put(_spec("a"), capture)
        os.utime(self_sized, (1_000, 1_000))
        fresh = store.put(_spec("b"), capture)
        # budget fits one entry: the older one went, the new one stays
        assert fresh.exists() and not self_sized.exists()
        assert store.stats.evictions == 1

    def test_unbounded_prune_is_a_no_op(self, store, capture):
        store.put(_spec("a"), capture)
        assert store.prune() == (0, 0)


class TestObservability:
    def test_shard_stats_merge_entries_and_traffic(self, store, capture):
        spec = _spec("a")
        store.put(spec, capture)
        store.get(spec)
        store.get(_spec("nothing"))
        stats = store.shard_stats()
        home = spec_digest(spec)[:1]
        assert stats[home]["entries"] == 1
        assert stats[home]["bytes"] > 0
        assert stats[home]["hits"] == 1
        miss_shard = spec_digest(_spec("nothing"))[:1]
        assert stats[miss_shard]["misses"] == 1

    def test_flat_entries_report_as_pseudo_shard(self, store, capture):
        CaptureStore(store.root).put(_spec("a"), capture)
        assert "" in store.shard_stats()

    def test_merge_traffic_folds_worker_deltas(self, store):
        store.merge_traffic({"a": {"hits": 2, "misses": 1}})
        store.merge_traffic({"a": {"hits": 1, "misses": 0}})
        assert store.shard_traffic["a"] == {"hits": 3, "misses": 1}


class TestFactory:
    def test_prefix_zero_builds_flat_store(self, tmp_path):
        store = make_store(tmp_path)
        assert type(store) is CaptureStore

    def test_prefix_builds_sharded_store(self, tmp_path):
        store = make_store(tmp_path, prefix=2, max_bytes=1024)
        assert isinstance(store, ShardedCaptureStore)
        assert store.prefix == 2 and store.max_bytes == 1024

    def test_detect_shard_prefix(self, tmp_path, capture):
        assert detect_shard_prefix(tmp_path / "missing") == 0
        flat = tmp_path / "flat"
        CaptureStore(flat).put(_spec("a"), capture)
        assert detect_shard_prefix(flat) == 0
        sharded = tmp_path / "sharded"
        ShardedCaptureStore(sharded, prefix=2).put(_spec("a"), capture)
        assert detect_shard_prefix(sharded) == 2
