"""ChunkSupervisor unit tests: deadlines, bisection, quarantine.

These drive the supervisor with fake executors (synchronously
completed futures), so every failure mode — crash, hang, corrupted
payload, transient flake — is exercised without forking a single
process. Real-pool behavior is covered by ``test_chaos.py``.
"""

from __future__ import annotations

import concurrent.futures
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.engine.supervision import (
    DEFAULT_JOB_TIMEOUT_S,
    ChunkSupervisor,
    chunk_deadline_s,
)
from repro.obs import TELEMETRY
from repro.resilience.guards import valid_chunk_outcome, valid_chunk_outcomes


def ok(job) -> tuple:
    return ("ok", {"value": float(job)}, None, None, (0, 0, 0, 0))


class FakeFuture:
    def __init__(self, value=None, exc=None):
        self._value = value
        self._exc = exc

    def done(self) -> bool:
        return True

    def result(self, timeout=None):
        if self._exc is not None:
            raise self._exc
        return self._value


class FakeHang(Exception):
    """Raised by a behavior to simulate a chunk that never returns."""


class FakePool:
    """Executor double: ``behavior(chunk_jobs)`` decides each outcome."""

    def __init__(self, behavior):
        self.behavior = behavior
        self.submissions: "list[list]" = []

    def submit(self, _fn, chunk_jobs):
        self.submissions.append(list(chunk_jobs))
        try:
            value = self.behavior(chunk_jobs)
        except FakeHang:
            return FakeFuture(exc=concurrent.futures.TimeoutError())
        except Exception as exc:  # noqa: BLE001 — test double
            return FakeFuture(exc=exc)
        return FakeFuture(value=value)


def make_supervisor(behavior, **kwargs):
    pool = FakePool(behavior)
    rebuilds = []
    supervisor = ChunkSupervisor(
        pool=lambda: pool,
        rebuild_pool=lambda: rebuilds.append(1),
        run_chunk=lambda jobs: None,
        backoff_s=0.0,
        **kwargs,
    )
    return supervisor, pool, rebuilds


@pytest.fixture
def telemetry():
    TELEMETRY.reset()
    TELEMETRY.enabled = True
    yield TELEMETRY
    TELEMETRY.enabled = False
    TELEMETRY.reset()


class TestDeadlines:
    def test_default_budget_scales_with_job_count(self):
        assert chunk_deadline_s(3, None) == DEFAULT_JOB_TIMEOUT_S * 4

    def test_override_replaces_the_default(self):
        assert chunk_deadline_s(1, 2.0) == 4.0

    def test_zero_disables_deadlines(self):
        assert chunk_deadline_s(5, 0) is None
        assert chunk_deadline_s(5, -1.0) is None


class TestOutcomeValidation:
    def test_accepts_both_wire_shapes(self):
        assert valid_chunk_outcome(ok(1))
        assert valid_chunk_outcome(
            ("err", "ValueError", "boom", None, None, (0, 0, 0, 0))
        )

    @pytest.mark.parametrize("bad", [
        None,
        ("garbage", None),
        ("ok", {"v": 1.0}, None, None),               # too short
        ("ok", {"v": 1.0}, None, None, (0, 0, 0)),    # 3-int store delta
        ("err", "T", "m", None, None, (0, 0, 0, 0), 7),  # too long
        ("ok", "not-a-dict", None, None, (0, 0, 0, 0)),
        ("err", None, "m", None, None, (0, 0, 0, 0)),
        ["ok", {"v": 1.0}, None, None, (0, 0, 0, 0)],  # list, not tuple
    ])
    def test_rejects_malformed_outcomes(self, bad):
        assert not valid_chunk_outcome(bad)

    def test_list_must_be_complete(self):
        assert valid_chunk_outcomes([ok(1), ok(2)], 2)
        assert not valid_chunk_outcomes([ok(1)], 2)       # truncated
        assert not valid_chunk_outcomes((ok(1), ok(2)), 2)  # wrong container


class TestHappyPath:
    def test_all_chunks_succeed(self, telemetry):
        supervisor, pool, rebuilds = make_supervisor(
            lambda chunk: [ok(j) for j in chunk]
        )
        jobs = list(range(6))
        results = supervisor.run(jobs, [[0, 1, 2], [3, 4, 5]])
        assert sorted(results) == jobs
        assert all(results[i] == ok(i) for i in jobs)
        assert rebuilds == []
        assert len(pool.submissions) == 2
        assert telemetry.counter_value("resilience.chunk_retries") == 0


class TestCrashIsolation:
    def test_bisection_quarantines_only_the_poison_job(self, telemetry):
        poison = 5

        def behavior(chunk):
            if poison in chunk:
                raise BrokenProcessPool("worker died")
            return [ok(j) for j in chunk]

        supervisor, _pool, rebuilds = make_supervisor(behavior)
        jobs = list(range(8))
        results = supervisor.run(jobs, [[0, 1, 2, 3], [4, 5, 6, 7]])
        assert sorted(results) == jobs
        for i in jobs:
            if i == poison:
                status, etype, message = results[i][:3]
                assert (status, etype) == ("err", "WorkerCrashError")
                assert "quarantined" in message
            else:
                assert results[i] == ok(i)
        assert rebuilds  # every crash tears the pool down
        assert telemetry.counter_value("resilience.jobs_quarantined") == 1
        assert telemetry.counter_value("resilience.chunk_retries") > 0

    def test_transient_crash_is_retried_not_quarantined(self, telemetry):
        state = {"crashes_left": 1}

        def behavior(chunk):
            if 3 in chunk and state["crashes_left"]:
                state["crashes_left"] -= 1
                raise BrokenProcessPool("flaky")
            return [ok(j) for j in chunk]

        supervisor, _pool, _rebuilds = make_supervisor(behavior)
        jobs = list(range(4))
        results = supervisor.run(jobs, [[0, 1], [2, 3]])
        assert all(results[i] == ok(i) for i in jobs)
        assert telemetry.counter_value("resilience.jobs_quarantined") == 0

    def test_collateral_chunks_keep_finished_results(self, telemetry):
        # Chunk [0,1] crashes the pool; [2,3] already completed. Its
        # harvested future must keep its results without a retry.
        def behavior(chunk):
            if 0 in chunk:
                raise BrokenProcessPool("down")
            return [ok(j) for j in chunk]

        supervisor, pool, _rebuilds = make_supervisor(behavior)
        results = supervisor.run(list(range(4)), [[0, 1], [2, 3]])
        assert results[2] == ok(2) and results[3] == ok(3)
        # [2,3] was submitted exactly once (pipelined), never retried
        assert pool.submissions.count([2, 3]) == 1


class TestTimeouts:
    def test_hung_chunk_is_quarantined_as_timeout(self, telemetry):
        def behavior(chunk):
            if 1 in chunk:
                raise FakeHang()
            return [ok(j) for j in chunk]

        supervisor, _pool, rebuilds = make_supervisor(
            behavior, job_timeout=0.5
        )
        results = supervisor.run([0, 1], [[0], [1]])
        assert results[0] == ok(0)
        status, etype, message = results[1][:3]
        assert (status, etype) == ("err", "WorkerTimeoutError")
        assert "deadline" in message
        assert rebuilds  # the hung worker was killed, not waited out
        assert telemetry.counter_value("resilience.deadline_expirations") > 0


class TestCorruptPayloads:
    def test_truncated_payload_is_quarantined_as_corruption(self, telemetry):
        def behavior(chunk):
            if 2 in chunk:
                return [ok(j) for j in chunk[:-1]]  # truncated
            return [ok(j) for j in chunk]

        supervisor, _pool, _rebuilds = make_supervisor(behavior)
        jobs = list(range(4))
        results = supervisor.run(jobs, [[0, 1], [2, 3]])
        assert results[0] == ok(0) and results[1] == ok(1)
        # bisection: [2,3] -> [2],[3]; [3] succeeds, [2] stays corrupt
        assert results[3] == ok(3)
        status, etype, _ = results[2][:3]
        assert (status, etype) == ("err", "ChunkCorruptionError")
        assert telemetry.counter_value("resilience.corrupt_chunks") > 0

    def test_garbled_outcome_is_detected(self, telemetry):
        state = {"garble": True}

        def behavior(chunk):
            if state["garble"]:
                state["garble"] = False
                return [("garbage", None)] + [ok(j) for j in chunk[1:]]
            return [ok(j) for j in chunk]

        supervisor, _pool, _rebuilds = make_supervisor(behavior)
        results = supervisor.run([0, 1], [[0, 1]])
        assert results[0] == ok(0) and results[1] == ok(1)
        assert telemetry.counter_value("resilience.corrupt_chunks") == 1
        assert telemetry.counter_value("resilience.jobs_quarantined") == 0

    def test_every_slot_gets_an_outcome_even_when_all_jobs_are_poison(
        self, telemetry
    ):
        def behavior(chunk):
            raise BrokenProcessPool("everything dies")

        supervisor, _pool, _rebuilds = make_supervisor(behavior)
        jobs = list(range(5))
        results = supervisor.run(jobs, [[0, 1, 2], [3, 4]])
        assert sorted(results) == jobs
        assert all(results[i][0] == "err" for i in jobs)
        assert telemetry.counter_value("resilience.jobs_quarantined") == 5
