"""Tests for tile-level dispatch: one frame's capture split across workers.

``capture_frame_tiled`` must be *byte*-identical to a serial
``capture_frame`` — the parts are runs of whole scheduling tiles, the
filtering is per-tile local, and ``assemble_capture`` recomputes the
only global structure (``row_ptr``). These tests run the worker
entrypoint in-process through an inline executor so the identity claim
is checked deterministically on every CI run without process-spawn
cost; the scheduler's live pool path reuses the same functions.
"""

import dataclasses
from concurrent.futures import Future

import numpy as np
import pytest

from repro.config import GpuConfig
from repro.engine import worker as worker_mod
from repro.engine.jobs import DEFAULT_CONFIG
from repro.engine.tiles import (
    TilePart,
    capture_frame_tiled,
    run_tile_part,
    split_tile_ranges,
)
from repro.engine.worker import WorkerSpec, _WorkerState, build_session
from repro.errors import PipelineError


class TestSplitTileRanges:
    def _check_cover(self, tile_ids, ranges):
        assert ranges[0][0] == 0
        assert ranges[-1][1] == tile_ids.size
        for (_, hi), (lo, _) in zip(ranges, ranges[1:]):
            assert hi == lo
        for lo, hi in ranges:
            assert hi > lo
            # Cuts land on tile boundaries only: a range never starts
            # mid-tile.
            if lo > 0:
                assert tile_ids[lo - 1] != tile_ids[lo]

    def test_empty_schedule(self):
        assert split_tile_ranges(np.empty(0, dtype=np.int64), 4) == []

    def test_single_part_is_whole_schedule(self):
        tile_ids = np.repeat([0, 1, 2], [4, 3, 5])
        assert split_tile_ranges(tile_ids, 1) == [(0, 12)]

    def test_ranges_cover_and_align(self):
        tile_ids = np.repeat([0, 1, 2, 5, 9], [4, 3, 5, 2, 7])
        for parts in (2, 3, 4, 5):
            ranges = split_tile_ranges(tile_ids, parts)
            assert len(ranges) <= parts
            self._check_cover(tile_ids, ranges)

    def test_more_parts_than_tiles(self):
        tile_ids = np.repeat([3, 8], [6, 2])
        ranges = split_tile_ranges(tile_ids, 16)
        assert ranges == [(0, 6), (6, 8)]

    def test_one_giant_tile_cannot_split(self):
        tile_ids = np.zeros(100, dtype=np.int64)
        assert split_tile_ranges(tile_ids, 8) == [(0, 100)]

    def test_near_equal_pixel_counts(self):
        # Many equal tiles: the cuts should land close to the ideal
        # equal split, off by at most one tile's pixels.
        tile_ids = np.repeat(np.arange(64), 5)
        ranges = split_tile_ranges(tile_ids, 4)
        sizes = [hi - lo for lo, hi in ranges]
        assert sum(sizes) == tile_ids.size
        assert max(sizes) - min(sizes) <= 5


class _InlineExecutor:
    """Runs submissions synchronously in this process."""

    def submit(self, fn, *args):
        future = Future()
        try:
            future.set_result(fn(*args))
        except BaseException as exc:  # pragma: no cover — test harness
            future.set_exception(exc)
        return future


class _FailingExecutor:
    """Pretends the worker died with a data-shipped error."""

    def submit(self, fn, *args):
        future = Future()
        future.set_result(("err", "RuntimeError", "synthetic tile failure"))
        return future


@pytest.fixture()
def worker_state(tmp_path, monkeypatch):
    """An initialized in-process worker (auto-restored afterwards)."""
    spec = WorkerSpec(
        base_config=GpuConfig(), scale=0.0625, store_root=str(tmp_path / "store")
    )
    state = _WorkerState(spec)
    monkeypatch.setattr(worker_mod, "_STATE", state)
    return state


class TestCaptureFrameTiled:
    WORKLOAD = "wolf-640x480"

    def test_byte_identical_to_serial_capture(self, worker_state):
        session = build_session(GpuConfig(), 0.0625, DEFAULT_CONFIG)
        from repro.engine.worker import resolve_workload

        serial = session.capture_frame(resolve_workload(self.WORKLOAD), 0)
        tiled = capture_frame_tiled(
            session, _InlineExecutor(), self.WORKLOAD, 0, DEFAULT_CONFIG, 3
        )
        for field in dataclasses.fields(type(serial)):
            a = getattr(serial, field.name)
            b = getattr(tiled, field.name)
            if isinstance(a, np.ndarray):
                assert a.tobytes() == b.tobytes(), field.name
                assert a.dtype == b.dtype, field.name
            else:
                assert a == b, field.name

    def test_worker_error_raises_for_fallback(self, worker_state):
        session = build_session(GpuConfig(), 0.0625, DEFAULT_CONFIG)
        with pytest.raises(PipelineError, match="synthetic tile failure"):
            capture_frame_tiled(
                session, _FailingExecutor(), self.WORKLOAD, 0, DEFAULT_CONFIG, 2
            )

    def test_render_cache_holds_single_entry(self, worker_state):
        from repro.engine import tiles

        for frame in (0, 1):
            outcome = run_tile_part(
                TilePart(self.WORKLOAD, frame, DEFAULT_CONFIG, 0, 4)
            )
            assert outcome[0] == "ok"
        assert len(tiles._RENDER_CACHE) == 1

    def test_parts_union_is_the_full_filter_set(self, worker_state):
        # Two half-frame parts produce exactly the rows of the whole
        # schedule, in order — the locality property byte-identity
        # rests on.
        from repro.engine import tiles

        workload, rendered, rows, cols, tile_ids = tiles._rendered_schedule(
            worker_state, TilePart(self.WORKLOAD, 0, DEFAULT_CONFIG, 0, 0)
        )
        (lo1, hi1), (lo2, hi2) = split_tile_ranges(tile_ids, 2)
        session = worker_state.session(DEFAULT_CONFIG)
        whole = session.filter_pixels(workload, rendered, rows, cols, tile_ids)
        part1 = run_tile_part(TilePart(self.WORKLOAD, 0, DEFAULT_CONFIG, lo1, hi1))
        part2 = run_tile_part(TilePart(self.WORKLOAD, 0, DEFAULT_CONFIG, lo2, hi2))
        assert part1[0] == "ok" and part2[0] == "ok"
        for key, value in whole.items():
            joined = np.concatenate([part1[1][key], part2[1][key]])
            assert value.tobytes() == joined.tobytes(), key
