"""Tests for the shared job-execution helpers (no rendering)."""

import pytest

from repro.config import BASELINE_CONFIG
from repro.engine.jobs import CaptureVariant, ConfigKey
from repro.engine.worker import (
    derive_config,
    effective_variant,
    resolve_workload,
    session_cache_key,
    vr_request,
)
from repro.errors import WorkloadError


class TestResolveWorkload:
    def test_plain_game_name(self):
        assert resolve_workload("wolf-640x480").name == "wolf-640x480"

    def test_vr_request_round_trip(self):
        name = vr_request("wolf-640x480", 2)
        assert name == "VR@2:wolf-640x480"
        stereo = resolve_workload(name)
        assert stereo.num_frames == 4  # two eyes per time step

    def test_malformed_vr_requests(self):
        with pytest.raises(WorkloadError):
            resolve_workload("VR@2")
        with pytest.raises(WorkloadError):
            resolve_workload("VR@x:wolf-640x480")

    def test_unknown_name(self):
        with pytest.raises(WorkloadError):
            resolve_workload("no-such-game-1x1")


class TestDeriveConfig:
    def test_default_key_is_identity(self):
        assert derive_config(BASELINE_CONFIG, ConfigKey()) is BASELINE_CONFIG

    def test_anisotropy_cap(self):
        config = derive_config(
            BASELINE_CONFIG, ConfigKey(max_anisotropy=4)
        )
        assert config.texture_unit.max_anisotropy == 4

    def test_cache_scaling(self):
        config = derive_config(BASELINE_CONFIG, ConfigKey(llc_scale=2))
        assert (
            config.texture_l2.size_bytes
            == 2 * BASELINE_CONFIG.texture_l2.size_bytes
        )


class TestSessionCacheKey:
    def test_evaluation_knobs_share_sessions(self):
        plain = session_cache_key(ConfigKey())
        tuned = session_cache_key(
            ConfigKey(stage2_threshold=0.2, hash_entries=4, software=True)
        )
        assert plain == tuned

    def test_session_axes_split_sessions(self):
        plain = session_cache_key(ConfigKey())
        assert session_cache_key(ConfigKey(compressed=True)) != plain
        assert session_cache_key(ConfigKey(llc_scale=2)) != plain


class TestEffectiveVariant:
    def test_base_cap_folds_to_none(self):
        cap = BASELINE_CONFIG.texture_unit.max_anisotropy
        variant = effective_variant(
            BASELINE_CONFIG, CaptureVariant(max_anisotropy=cap)
        )
        assert variant == CaptureVariant()

    def test_lower_cap_is_preserved(self):
        variant = effective_variant(
            BASELINE_CONFIG, CaptureVariant(max_anisotropy=4)
        )
        assert variant.max_anisotropy == 4
