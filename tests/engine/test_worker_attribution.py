"""Per-worker telemetry attribution through the process backend.

The observability contract for ``--jobs N``: merged counter totals are
identical to a serial run's (determinism), and the per-worker dimension
partitions those totals exactly — no work is dropped or double-counted
on the way through ``snapshot_remote``/``merge_remote``.
"""

import pytest

from repro.engine.jobs import eval_job
from repro.experiments.runner import ExperimentContext
from repro.obs import TELEMETRY, build_record

WORKLOADS = ("wolf-640x480", "HL2-640x480")

# Deterministic, worker-side-only counters: rendering and filtering
# happen inside pool workers, and the parent never increments these
# itself (unlike e.g. ``experiment.evaluations``, which the parent
# counts while merging outcomes).
ATTRIBUTED = ("session.capture_frames", "texture.trilinear_samples")


def make_ctx(**kwargs):
    return ExperimentContext(
        scale=0.0625, frames=1, workloads=WORKLOADS, **kwargs
    )


def plan():
    return [
        eval_job(workload, 0, scenario, threshold)
        for workload in WORKLOADS
        for scenario, threshold in (("baseline", 1.0), ("patu", 0.4))
    ]


@pytest.fixture
def telemetry():
    TELEMETRY.reset()
    TELEMETRY.enabled = True
    yield TELEMETRY
    TELEMETRY.enabled = False
    TELEMETRY.reset()


class TestWorkerAttribution:
    def test_jobs2_attribution_sums_to_serial_totals(self, tmp_path, telemetry):
        make_ctx().execute(plan())
        serial = {
            name: telemetry.counter_value(name) for name in ATTRIBUTED
        }
        assert all(value > 0 for value in serial.values()), serial

        telemetry.reset()
        parallel = make_ctx(
            jobs=2, capture_cache=tmp_path / "captures"
        )
        parallel.execute(plan())

        # Merged totals match the serial run exactly...
        merged = {
            name: telemetry.counter_value(name) for name in ATTRIBUTED
        }
        assert merged == serial

        # ...and the per-worker dimension partitions them exactly.
        workers = telemetry.worker_summary()
        assert workers, "process backend produced no worker attribution"
        for name in ATTRIBUTED:
            across = sum(
                stats["counters"].get(name, 0.0)
                for stats in workers.values()
            )
            assert across == serial[name], name
        for stats in workers.values():
            assert stats["busy_us"] > 0

    def test_ledger_record_carries_the_worker_dimension(
        self, tmp_path, telemetry
    ):
        ctx = make_ctx(jobs=2, capture_cache=tmp_path / "captures")
        ctx.execute(plan())
        record = build_record(
            "experiment", telemetry=telemetry, calibration_ms=1.0
        )
        workers = record["workers"]
        assert workers
        total = sum(
            stats["counters"].get("texture.trilinear_samples", 0.0)
            for stats in workers.values()
        )
        assert total == telemetry.counter_value("texture.trilinear_samples")

    def test_serial_runs_leave_workers_empty(self, telemetry):
        make_ctx().execute(plan())
        assert telemetry.worker_summary() == {}
        record = build_record(
            "experiment", telemetry=telemetry, calibration_ms=1.0
        )
        assert record["workers"] == {}
