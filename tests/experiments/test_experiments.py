"""Smoke + shape tests for every experiment module on a small context.

These verify that each table/figure reproduction runs end-to-end and
that the *structural* paper claims hold even on a tiny configuration
(two workloads, one frame, 1/16 scale). The full-size runs live in
``benchmarks/``.
"""

import numpy as np
import pytest

from repro.experiments import (
    fig03_sharpness,
    fig04_rbench,
    fig05_af_off,
    fig06_bandwidth,
    fig07_quality,
    fig08_ssim_map,
    fig12_sharing,
    fig15_lod_shift,
    fig17_threshold,
    fig18_latency,
    fig19_speedup_quality,
    fig20_energy,
    fig21_cache,
    fig22_user_study,
    sec5c_divergence,
    sec5d_overhead,
    table1_config,
    table2_benchmarks,
)
from repro.experiments.runner import ExperimentContext, format_table


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext(
        scale=0.1,
        frames=1,
        workloads=("HL2-1600x1200", "doom3-1280x1024"),
    )


class TestStaticTables:
    def test_table1_has_all_rows(self):
        result = table1_config.run()
        params = [r["parameter"] for r in result.rows]
        assert "Frequency" in params and "Memory configuration" in params
        assert len(result.rows) == 10

    def test_table2_lists_eleven_configs(self):
        result = table2_benchmarks.run()
        assert len(result.rows) == 11
        assert {r["library"] for r in result.rows} == {"DirectX3D", "OpenGL"}


class TestMotivationExperiments:
    def test_fig5_af_off_speeds_up(self, ctx):
        result = fig05_af_off.run(ctx)
        avg = result.rows[-1]
        assert avg["workload"] == "average"
        assert avg["speedup"] > 1.0
        assert 0.0 < avg["energy_reduction"] < 1.0

    def test_fig6_texture_dominates_bandwidth(self, ctx):
        result = fig06_bandwidth.run(ctx)
        on_rows = [r for r in result.rows if r["mode"] == "AF-on"]
        off_rows = [r for r in result.rows if r["mode"] == "AF-off"]
        for on, off in zip(on_rows, off_rows):
            assert on["texture"] > 0.4  # texture is the dominant share
            assert on["total"] == pytest.approx(1.0)
            assert off["total"] < on["total"]  # AF-off cuts traffic
            assert off["texture"] < on["texture"]

    def test_fig7_quality_loss_positive(self, ctx):
        result = fig07_quality.run(ctx)
        for row in result.rows:
            assert 0.0 < row["quality_loss"] < 0.5

    def test_fig8_more_than_half_pixels_unaffected(self, ctx):
        result = fig08_ssim_map.run(ctx)
        row = result.rows[0]
        assert row["frac_pixels_ssim>=0.9"] > 0.5
        images = result.images
        assert images["ssim_map"].shape == images["af_on"].shape

    def test_fig12_majority_sharing(self, ctx):
        result = fig12_sharing.run(ctx)
        avg = result.rows[-1]["sharing_fraction"]
        assert 0.35 < avg < 0.85  # paper: 62%

    def test_fig3_af_sharper_on_oblique(self, ctx):
        result = fig03_sharpness.run(ctx)
        for row in result.rows:
            assert row["sharpness_gain_oblique"] > 1.0

    def test_fig15_lod_reuse_recovers_detail(self, ctx):
        result = fig15_lod_shift.run(ctx)
        avg = result.rows[-1]
        assert avg["sharpness_vs_af_shift"] < avg["sharpness_vs_af_reuse"]
        assert avg["mssim_lod_reuse"] >= avg["mssim_lod_shift"] - 0.01


class TestMainResults:
    def test_fig17_tradeoff_shape(self, ctx):
        result = fig17_threshold.run(ctx)
        hl2 = [r for r in result.rows if r["workload"] == "HL2-1600x1200"]
        by_t = {r["threshold"]: r for r in hl2}
        # X-shape: speedup falls and quality rises with the threshold.
        assert by_t[0.0]["speedup"] >= by_t[1.0]["speedup"]
        assert by_t[0.0]["mssim"] <= by_t[1.0]["mssim"] + 1e-9
        assert by_t[1.0]["mssim"] == pytest.approx(1.0)
        # BP is recorded for every workload plus the average.
        assert set(result.best_points) == {
            "HL2-1600x1200", "doom3-1280x1024", "average",
        }

    def test_fig18_approximation_cuts_latency(self, ctx):
        result = fig18_latency.run(ctx)
        avg = result.rows[-1]
        assert avg["baseline"] == pytest.approx(1.0)
        assert avg["afssim_n_txds"] <= avg["afssim_n"] + 1e-9
        assert avg["patu"] < 1.0

    def test_fig19_scenario_ordering(self, ctx):
        result = fig19_speedup_quality.run(ctx)
        avg = result.rows[-1]
        # N+Txds is the fastest approximation; PATU recovers quality
        # above N+Txds at a small performance cost.
        assert avg["afssim_n_txds_speedup"] >= avg["afssim_n_speedup"] - 1e-9
        assert avg["patu_mssim"] > avg["afssim_n_txds_mssim"]
        assert avg["baseline_mssim"] == pytest.approx(1.0)

    def test_fig20_energy_ordering(self, ctx):
        result = fig20_energy.run(ctx)
        avg = result.rows[-1]
        assert avg["baseline"] == pytest.approx(1.0)
        assert avg["patu"] < 1.0
        # PATU pays slightly more energy than N+Txds for LOD reuse.
        assert avg["patu"] >= avg["afssim_n_txds"] - 1e-9

    def test_fig21_patu_orthogonal_to_capacity(self, ctx):
        result = fig21_cache.run(ctx)
        avg = result.rows[-1]
        assert avg["1x"] == pytest.approx(1.0)
        for label in ("1x", "2xLLC", "4xLLC", "2xTC+4xLLC"):
            assert avg[f"{label}+PATU"] > avg[label]  # PATU helps everywhere

    def test_sec5c_divergence_is_rare(self, ctx):
        result = sec5c_divergence.run(ctx)
        assert result.rows[-1]["quad_divergence"] < 0.05

    def test_sec5d_overhead_rows(self):
        result = sec5d_overhead.run()
        values = {r["quantity"]: r["value"] for r in result.rows}
        assert values["bits per entry"] == 260
        assert values["SRAM per texture unit (KB)"] == pytest.approx(2.03)


class TestUserFacing:
    def test_fig4_af_off_improves_fps(self, ctx):
        result = fig04_rbench.run(ctx)
        for row in result.rows:
            assert row["fps_af_off"] > row["fps_af_on"]
        res_4k = [r["improvement"] for r in result.rows if r["resolution"] == "4K"]
        res_2k = [r["improvement"] for r in result.rows if r["resolution"] == "2K"]
        assert np.mean(res_4k) > 0 and np.mean(res_2k) > 0

    def test_fig22_intermediate_threshold_wins(self, ctx):
        result = fig22_user_study.run(ctx)
        for name, best in result.preferred.items():
            assert 0.0 <= best <= 1.0
        # Scores exist for every (workload, threshold) pair.
        assert len(result.rows) == len(fig22_user_study.WORKLOADS) * len(
            fig22_user_study.THRESHOLDS
        )

    def test_format_table_renders_every_experiment(self, ctx):
        for module in (fig05_af_off, fig12_sharing, sec5d_overhead):
            text = format_table(module.run(ctx))
            assert text.startswith("== ")
