"""Tests for the extension and ablation experiments."""

import pytest

from repro.experiments import (
    REGISTRY,
    ablation_hash_entries,
    ablation_max_aniso,
    ablation_split_threshold,
    ext_software,
    ext_vr,
)
from repro.experiments.runner import ExperimentContext


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext(
        scale=0.08, frames=1, workloads=("doom3-1280x1024",)
    )


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        expected = {
            "table1", "table2", "fig4", "fig5", "fig6", "fig7", "fig8",
            "fig12", "fig17", "fig18", "fig19", "fig20", "fig21", "fig22",
            "sec5c", "sec5d",
        }
        assert expected <= set(REGISTRY)

    def test_extensions_registered(self):
        for exp_id in ("ext_vr", "ext_compression", "ext_software",
                       "ablation_split_threshold",
                       "ablation_hash_entries", "ablation_max_aniso"):
            assert exp_id in REGISTRY
            assert hasattr(REGISTRY[exp_id], "run")
            assert hasattr(REGISTRY[exp_id], "TITLE")


class TestSoftwareExtension:
    def test_granularity_gap(self, ctx):
        result = ext_software.run(ctx)
        for row in result.rows:
            assert row["hw_operating_points"] > row["sw_operating_points"]
            assert row["sw_operating_points"] <= row["draw_calls"] + 1
            # Compute-bound workloads can dip marginally below 1.0
            # (predictor overhead with no memory bottleneck to relieve).
            assert row["hw_speedup_at_target"] >= 0.98
            assert row["sw_speedup_at_target"] >= 0.98


class TestVrExtension:
    def test_eyes_agree(self, ctx):
        result = ext_vr.run(ctx)
        for row in result.rows:
            assert row["left_approx"] == pytest.approx(
                row["right_approx"], abs=0.1
            )
            assert row["left_speedup"] == pytest.approx(
                row["right_speedup"], rel=0.15
            )
            assert 0.8 < row["mssim"] <= 1.0


class TestSplitThresholdAblation:
    def test_unified_is_near_optimal(self, ctx):
        result = ablation_split_threshold.run(ctx)
        for name in ablation_split_threshold.WORKLOADS:
            rows = [r for r in result.rows if r["workload"] == name]
            best_split = max(r["metric"] for r in rows)
            best_unified = max(
                r["metric"] for r in rows
                if r["stage1_threshold"] == r["stage2_threshold"]
            )
            # The unified diagonal forfeits at most a few percent.
            assert best_unified >= 0.95 * best_split

    def test_grid_is_complete(self, ctx):
        result = ablation_split_threshold.run(ctx)
        grid = len(ablation_split_threshold.GRID)
        per_workload = grid * grid
        assert len(result.rows) == per_workload * len(
            ablation_split_threshold.WORKLOADS
        )


class TestHashEntriesAblation:
    def test_capacity_monotone(self, ctx):
        result = ablation_hash_entries.run(ctx)
        by_entries = {r["entries"]: r for r in result.rows}
        assert (
            by_entries[4]["approximation_rate"]
            <= by_entries[8]["approximation_rate"]
            <= by_entries[16]["approximation_rate"]
        )
        # SRAM cost scales linearly with entries.
        assert by_entries[16]["sram_kb_per_unit"] == pytest.approx(
            4 * by_entries[4]["sram_kb_per_unit"], abs=0.02
        )


class TestMaxAnisoAblation:
    def test_anisotropy_grows_with_cap(self, ctx):
        result = ablation_max_aniso.run(ctx)
        by_level = {r["max_aniso"]: r for r in result.rows}
        assert by_level[4]["mean_n"] <= by_level[8]["mean_n"] <= by_level[16]["mean_n"]
        # Capping AF costs baseline quality vs the 16x reference.
        assert by_level[4]["baseline_quality_vs_16x"] <= 1.0
        assert by_level[16]["baseline_quality_vs_16x"] == pytest.approx(1.0)
