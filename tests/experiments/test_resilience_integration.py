"""End-to-end resilience: isolated failures, resume, faulted CLI runs."""

from __future__ import annotations

import numpy as np

from repro.cli import main
from repro.experiments import REGISTRY
from repro.experiments.runner import (
    ExperimentContext,
    format_table,
    run_experiment,
)
from repro.obs import TELEMETRY

WL = "wolf-640x480"
BAD = "no-such-workload-1x1"
SCALE = 0.125


def test_sweep_survives_one_failing_workload():
    ctx = ExperimentContext(scale=SCALE, frames=1, workloads=(WL, BAD))
    result = run_experiment("fig5", REGISTRY["fig5"], ctx)

    workloads = [row["workload"] for row in result.rows]
    assert WL in workloads
    assert "average" in workloads
    assert BAD not in workloads
    for row in result.rows:
        assert np.isfinite(row["speedup"])

    # the bad workload produces a per-frame "evaluate" failure plus the
    # workload-level all-frames-failed record — nothing about WL
    assert result.failures
    assert all(record.workload == BAD for record in result.failures)
    assert {record.stage for record in result.failures} == {
        "evaluate", "experiment"
    }
    assert result.failures[0].error_type == "WorkloadError"
    assert "isolated failure" in format_table(result)
    # failures were drained into the result, not left on the context
    assert ctx.failures == []


def test_resume_skips_checkpointed_evaluations(tmp_path):
    checkpoint = tmp_path / "cp.json"
    TELEMETRY.reset()
    TELEMETRY.enabled = True
    try:
        ctx1 = ExperimentContext(
            scale=SCALE, frames=1, workloads=(WL,),
            checkpoint_path=checkpoint,
        )
        first_result = run_experiment("fig5", REGISTRY["fig5"], ctx1)
        evaluations = TELEMETRY.counter_value("experiment.evaluations")
        assert evaluations > 0
        assert checkpoint.exists()

        ctx2 = ExperimentContext(
            scale=SCALE, frames=1, workloads=(WL,),
            checkpoint_path=checkpoint,
        )
        assert ctx2.load_checkpoint() > 0
        second_result = run_experiment("fig5", REGISTRY["fig5"], ctx2)
        # zero new design-point evaluations: everything came from the
        # checkpoint (the resume acceptance criterion)
        assert TELEMETRY.counter_value("experiment.evaluations") == evaluations
    finally:
        TELEMETRY.enabled = False
        TELEMETRY.reset()

    assert format_table(second_result) == format_table(first_result)


def test_cli_fault_injection_run_completes(tmp_path, capsys):
    out = tmp_path / "table.txt"
    rc = main([
        "experiment", "fig5", "--workloads", WL,
        "--frames", "1", "--scale", str(SCALE),
        "--inject-faults", "--fault-rate", "0.02", "--fault-seed", "7",
        "--out", str(out),
    ])
    assert rc == 0
    captured = capsys.readouterr()
    assert "fault injection:" in captured.err
    assert "0 fault(s) injected" not in captured.err
    assert out.exists()
    assert "fig5" in out.read_text()


def test_cli_checkpoint_resume_flow(tmp_path, capsys):
    checkpoint = tmp_path / "cp.json"
    args = [
        "experiment", "fig5", "--workloads", WL,
        "--frames", "1", "--scale", str(SCALE),
        "--checkpoint", str(checkpoint),
    ]
    assert main(args) == 0
    assert checkpoint.exists()
    capsys.readouterr()

    assert main(args + ["--resume"]) == 0
    captured = capsys.readouterr()
    assert "resumed" in captured.err


def test_process_backend_resume_skips_checkpointed_evaluations(tmp_path):
    """Same resume contract as serial, over the --jobs N backend: the
    second run must re-evaluate nothing and emit an identical table."""
    checkpoint = tmp_path / "cp.json"
    cache = tmp_path / "captures"
    TELEMETRY.reset()
    TELEMETRY.enabled = True
    try:
        ctx1 = ExperimentContext(
            scale=SCALE, frames=1, workloads=(WL,),
            checkpoint_path=checkpoint, jobs=2, capture_cache=cache,
        )
        first_result = run_experiment("fig5", REGISTRY["fig5"], ctx1)
        evaluations = TELEMETRY.counter_value("experiment.evaluations")
        assert evaluations > 0
        assert checkpoint.exists()

        ctx2 = ExperimentContext(
            scale=SCALE, frames=1, workloads=(WL,),
            checkpoint_path=checkpoint, jobs=2, capture_cache=cache,
        )
        assert ctx2.load_checkpoint() > 0
        second_result = run_experiment("fig5", REGISTRY["fig5"], ctx2)
        assert TELEMETRY.counter_value("experiment.evaluations") == evaluations
    finally:
        TELEMETRY.enabled = False
        TELEMETRY.reset()

    assert format_table(second_result) == format_table(first_result)


def test_cli_sigint_flushes_checkpoint_then_resumes(
    tmp_path, capsys, monkeypatch
):
    """SIGINT mid-run over the process backend: the CLI must flush the
    checkpoint, exit 130, and a --resume rerun must complete clean."""
    from repro.experiments import fig05_af_off

    checkpoint = tmp_path / "cp.json"
    args = [
        "experiment", "fig5", "--workloads", WL,
        "--frames", "1", "--scale", str(SCALE),
        "--jobs", "2", "--capture-cache", str(tmp_path / "captures"),
        "--checkpoint", str(checkpoint),
    ]

    real_run = fig05_af_off.run

    def interrupted_run(ctx=None):
        # All evaluations complete (and land in the metrics cache),
        # then the interrupt arrives before the table is assembled —
        # the worst moment: maximum work to lose.
        real_run(ctx)
        raise KeyboardInterrupt

    monkeypatch.setattr(fig05_af_off, "run", interrupted_run)
    assert main(args) == 130
    captured = capsys.readouterr()
    assert "checkpoint flushed" in captured.err
    assert checkpoint.exists()

    monkeypatch.setattr(fig05_af_off, "run", real_run)
    assert main(args + ["--resume"]) == 0
    captured = capsys.readouterr()
    assert "resumed" in captured.err
