"""Tests for the experiment runner infrastructure."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.runner import (
    DEFAULT_WORKLOADS,
    ExperimentContext,
    ExperimentResult,
    format_table,
)


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext(
        scale=0.0625, frames=1, workloads=("wolf-640x480",)
    )


class TestContext:
    def test_default_workload_list_is_table2(self):
        assert len(DEFAULT_WORKLOADS) == 11
        assert DEFAULT_WORKLOADS[0] == "HL2-1600x1200"

    def test_captures_are_cached(self, ctx):
        a = ctx.capture("wolf-640x480", 0)
        b = ctx.capture("wolf-640x480", 0)
        assert a is b

    def test_results_are_cached(self, ctx):
        a = ctx.result("wolf-640x480", 0, "baseline", 1.0)
        b = ctx.result("wolf-640x480", 0, "baseline", 1.0)
        assert a is b

    def test_distinct_design_points_distinct_results(self, ctx):
        a = ctx.result("wolf-640x480", 0, "patu", 0.2)
        b = ctx.result("wolf-640x480", 0, "patu", 0.8)
        assert a is not b
        assert a.approximation_rate >= b.approximation_rate

    def test_cache_scaled_sessions_are_reused(self, ctx):
        key = (2, 1, None, False)  # engine session_cache_key layout
        ctx.result("wolf-640x480", 0, "baseline", 1.0, llc_scale=2)
        assert key in ctx._alt_sessions
        session = ctx._alt_sessions[key]
        ctx.result("wolf-640x480", 0, "patu", 0.4, llc_scale=2)
        assert ctx._alt_sessions[key] is session

    def test_larger_llc_never_more_dram_traffic(self, ctx):
        base = ctx.result("wolf-640x480", 0, "baseline", 1.0)
        big = ctx.result("wolf-640x480", 0, "baseline", 1.0, llc_scale=4)
        assert big.hierarchy.dram_bytes <= base.hierarchy.dram_bytes

    def test_mean_over_frames_keys(self, ctx):
        m = ctx.mean_over_frames("wolf-640x480", "baseline", 1.0)
        for key in ("cycles", "mssim", "energy_nj", "request_latency", "fps"):
            assert key in m
        assert m["mssim"] == 1.0

    def test_rbench_workloads_resolve(self, ctx):
        wl = ctx.workload("R.Bench-2K")
        assert wl.width == 2560

    def test_rejects_zero_frames(self):
        with pytest.raises(ExperimentError):
            ExperimentContext(frames=0)


class TestFormatTable:
    def test_formats_rows_aligned(self):
        result = ExperimentResult(
            experiment="x", title="T",
            rows=[{"a": 1, "speed": 1.2345}, {"a": 22, "speed": 0.5}],
            notes="note",
        )
        text = format_table(result)
        assert "== x: T ==" in text
        assert "1.234" in text  # floats at 3 decimals
        assert text.endswith("note\n")

    def test_empty_rows(self):
        text = format_table(ExperimentResult(experiment="x", title="T", rows=[]))
        assert "(no rows)" in text

    def test_column_accessor(self):
        result = ExperimentResult(
            experiment="x", title="T", rows=[{"a": 1}, {"a": 2}]
        )
        assert result.column("a") == [1, 2]
