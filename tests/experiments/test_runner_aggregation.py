"""Tests for the context's frame aggregation arithmetic."""

import pytest

from repro.experiments.runner import ExperimentContext


@pytest.fixture(scope="module")
def ctx2():
    return ExperimentContext(
        scale=0.0625, frames=2, workloads=("wolf-640x480",)
    )


class TestMeanOverFrames:
    def test_mean_equals_average_of_frames(self, ctx2):
        mean = ctx2.mean_over_frames("wolf-640x480", "baseline", 1.0)
        r0 = ctx2.result("wolf-640x480", 0, "baseline", 1.0)
        r1 = ctx2.result("wolf-640x480", 1, "baseline", 1.0)
        assert mean["cycles"] == pytest.approx(
            (r0.frame_cycles + r1.frame_cycles) / 2
        )
        assert mean["energy_nj"] == pytest.approx(
            (r0.total_energy_nj + r1.total_energy_nj) / 2
        )
        assert mean["mssim"] == pytest.approx((r0.mssim + r1.mssim) / 2)

    def test_distinct_frames_rendered(self, ctx2):
        a = ctx2.capture("wolf-640x480", 0)
        b = ctx2.capture("wolf-640x480", 1)
        assert a is not b
        # The camera moved, so the captures genuinely differ.
        assert a.num_pixels != b.num_pixels or a.n.sum() != b.n.sum()

    def test_bandwidth_categories_sum_to_total(self, ctx2):
        mean = ctx2.mean_over_frames("wolf-640x480", "patu", 0.4)
        parts = (
            mean["texture_bytes"] + mean["color_bytes"]
            + mean["depth_bytes"] + mean["geometry_bytes"]
        )
        assert parts == pytest.approx(mean["total_bytes"])

    def test_cache_scaled_points_are_separate_entries(self, ctx2):
        base = ctx2.mean_over_frames("wolf-640x480", "baseline", 1.0)
        scaled = ctx2.mean_over_frames(
            "wolf-640x480", "baseline", 1.0, llc_scale=4
        )
        assert scaled["dram_bytes"] <= base["dram_bytes"]
