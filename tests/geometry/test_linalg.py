"""Tests for the linear-algebra toolkit."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import GeometryError
from repro.geometry.linalg import (
    identity,
    look_at,
    normalize,
    perspective,
    rotate_x,
    rotate_y,
    rotate_z,
    scale,
    transform_points,
    translate,
)

_angle = st.floats(min_value=-math.pi, max_value=math.pi)


class TestBasicMatrices:
    def test_identity_is_noop(self):
        pts = np.array([[1.0, 2.0, 3.0]])
        out = transform_points(identity(), pts)
        assert np.allclose(out[:, :3], pts)
        assert np.allclose(out[:, 3], 1.0)

    def test_translate_moves_points(self):
        out = transform_points(translate(1, -2, 3), np.array([[0.0, 0.0, 0.0]]))
        assert np.allclose(out[0, :3], [1, -2, 3])

    def test_scale_is_componentwise(self):
        out = transform_points(scale(2, 3, 4), np.array([[1.0, 1.0, 1.0]]))
        assert np.allclose(out[0, :3], [2, 3, 4])

    @given(_angle)
    def test_rotations_are_orthonormal(self, angle):
        for rot in (rotate_x, rotate_y, rotate_z):
            m = rot(angle)[:3, :3]
            assert np.allclose(m @ m.T, np.eye(3), atol=1e-12)
            assert np.linalg.det(m) == pytest.approx(1.0)

    def test_rotate_z_quarter_turn(self):
        out = transform_points(rotate_z(math.pi / 2), np.array([[1.0, 0.0, 0.0]]))
        assert np.allclose(out[0, :3], [0, 1, 0], atol=1e-12)

    def test_rotate_y_quarter_turn(self):
        out = transform_points(rotate_y(math.pi / 2), np.array([[0.0, 0.0, -1.0]]))
        assert np.allclose(out[0, :3], [-1, 0, 0], atol=1e-12)


class TestNormalize:
    @given(st.lists(st.floats(min_value=-100, max_value=100), min_size=3, max_size=3))
    def test_unit_length_or_error(self, vec):
        v = np.asarray(vec)
        if np.linalg.norm(v) < 1e-12:
            with pytest.raises(GeometryError):
                normalize(v)
        else:
            assert np.linalg.norm(normalize(v)) == pytest.approx(1.0)


class TestLookAt:
    def test_view_space_axes(self):
        m = look_at((0, 0, 5), (0, 0, 0))
        # The target lies straight ahead on -Z in view space.
        out = transform_points(m, np.array([[0.0, 0.0, 0.0]]))
        assert out[0, 0] == pytest.approx(0.0, abs=1e-12)
        assert out[0, 1] == pytest.approx(0.0, abs=1e-12)
        assert out[0, 2] == pytest.approx(-5.0)

    def test_eye_maps_to_origin(self):
        m = look_at((3, 4, 5), (0, 1, 0))
        out = transform_points(m, np.array([[3.0, 4.0, 5.0]]))
        assert np.allclose(out[0, :3], 0.0, atol=1e-12)

    def test_degenerate_up_rejected(self):
        with pytest.raises(GeometryError):
            look_at((0, 0, 0), (0, 1, 0), up=(0, 1, 0))


class TestPerspective:
    def test_near_plane_maps_to_minus_one(self):
        m = perspective(math.radians(60), 1.0, 1.0, 100.0)
        out = transform_points(m, np.array([[0.0, 0.0, -1.0]]))
        assert out[0, 2] / out[0, 3] == pytest.approx(-1.0)

    def test_far_plane_maps_to_plus_one(self):
        m = perspective(math.radians(60), 1.0, 1.0, 100.0)
        out = transform_points(m, np.array([[0.0, 0.0, -100.0]]))
        assert out[0, 2] / out[0, 3] == pytest.approx(1.0)

    def test_field_of_view_edge(self):
        fov = math.radians(90)
        m = perspective(fov, 1.0, 1.0, 100.0)
        # A point on the top frustum edge lands at ndc y = 1.
        out = transform_points(m, np.array([[0.0, 10.0, -10.0]]))
        assert out[0, 1] / out[0, 3] == pytest.approx(1.0)

    def test_rejects_bad_planes(self):
        with pytest.raises(GeometryError):
            perspective(1.0, 1.0, 10.0, 1.0)
        with pytest.raises(GeometryError):
            perspective(0.0, 1.0, 0.1, 10.0)
        with pytest.raises(GeometryError):
            perspective(1.0, -2.0, 0.1, 10.0)


class TestTransformPoints:
    def test_rejects_bad_shape(self):
        with pytest.raises(GeometryError):
            transform_points(identity(), np.zeros((3, 4)))
