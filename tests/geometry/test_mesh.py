"""Tests for meshes and the quad/box constructors."""

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometry.mesh import Mesh, VertexBuffer, make_box, make_quad


def _unit_quad(**kwargs):
    corners = np.array(
        [[0, 0, 0], [1, 0, 0], [1, 1, 0], [0, 1, 0]], dtype=np.float64
    )
    return make_quad(corners, "tex", **kwargs)


class TestVertexBuffer:
    def test_lengths_must_match(self):
        with pytest.raises(GeometryError):
            VertexBuffer(positions=np.zeros((3, 3)), uvs=np.zeros((2, 2)))

    def test_shape_validation(self):
        with pytest.raises(GeometryError):
            VertexBuffer(positions=np.zeros((3, 2)), uvs=np.zeros((3, 2)))


class TestMesh:
    def test_index_bounds_checked(self):
        vb = VertexBuffer(positions=np.zeros((3, 3)), uvs=np.zeros((3, 2)))
        with pytest.raises(GeometryError):
            Mesh(vertices=vb, indices=np.array([[0, 1, 3]]), texture="t")

    def test_texture_required(self):
        vb = VertexBuffer(positions=np.zeros((3, 3)), uvs=np.zeros((3, 2)))
        with pytest.raises(GeometryError):
            Mesh(vertices=vb, indices=np.array([[0, 1, 2]]), texture="")

    def test_uv_scale_applies_to_triangle_uvs(self):
        mesh = _unit_quad(uv_scale=8.0)
        assert mesh.triangle_uvs().max() == pytest.approx(8.0)

    def test_uv_scale_must_be_positive(self):
        with pytest.raises(GeometryError):
            _unit_quad(uv_scale=0.0)


class TestMakeQuad:
    def test_simple_quad_has_two_triangles(self):
        mesh = _unit_quad()
        assert mesh.num_triangles == 2
        assert mesh.num_vertices == 4

    def test_subdivision_counts(self):
        mesh = _unit_quad(subdivisions=4)
        assert mesh.num_triangles == 2 * 16
        assert mesh.num_vertices == 25

    def test_subdivided_quad_preserves_corners(self):
        corners = np.array(
            [[-3, 0, 2], [5, 0, 2], [5, 0, -9], [-3, 0, -9]], dtype=np.float64
        )
        mesh = make_quad(corners, "t", subdivisions=3)
        pos = mesh.vertices.positions
        for corner in corners:
            assert np.min(np.linalg.norm(pos - corner, axis=1)) < 1e-12

    def test_uvs_span_unit_square(self):
        mesh = _unit_quad(subdivisions=2)
        uvs = mesh.vertices.uvs
        assert uvs.min() == pytest.approx(0.0)
        assert uvs.max() == pytest.approx(1.0)

    def test_triangle_winding_is_consistent(self):
        mesh = _unit_quad(subdivisions=2)
        tris = mesh.triangle_positions()
        normals = np.cross(tris[:, 1] - tris[:, 0], tris[:, 2] - tris[:, 0])
        # A flat quad in the XY plane: all normals point the same way.
        assert np.all(normals[:, 2] > 0)

    def test_rejects_bad_inputs(self):
        with pytest.raises(GeometryError):
            make_quad(np.zeros((3, 3)), "t")
        with pytest.raises(GeometryError):
            _unit_quad(subdivisions=0)


class TestMakeBox:
    def test_box_has_twelve_triangles(self):
        box = make_box((0, 0, 0), (2, 2, 2), "t")
        assert box.num_triangles == 12
        assert box.num_vertices == 24  # 4 per face, faces unshared for UVs

    def test_box_extents(self):
        box = make_box((1, 2, 3), (2, 4, 6), "t")
        pos = box.vertices.positions
        assert pos.min(axis=0) == pytest.approx([0, 0, 0])
        assert pos.max(axis=0) == pytest.approx([2, 4, 6])

    def test_box_normals_point_outward(self):
        box = make_box((0, 0, 0), (2, 2, 2), "t")
        tris = box.triangle_positions()
        centers = tris.mean(axis=1)
        normals = np.cross(tris[:, 1] - tris[:, 0], tris[:, 2] - tris[:, 0])
        # Outward: normal aligns with the center-to-face direction.
        assert np.all(np.einsum("ij,ij->i", normals, centers) > 0)

    def test_rejects_degenerate_size(self):
        with pytest.raises(GeometryError):
            make_box((0, 0, 0), (0, 1, 1), "t")
