"""Tests for the tessellation stage."""

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometry.mesh import make_box, make_quad
from repro.geometry.tessellation import tessellate


def _flat_quad():
    corners = np.array(
        [[0, 0, 0], [4, 0, 0], [4, 4, 0], [0, 4, 0]], dtype=np.float64
    )
    return make_quad(corners, "t")


class TestSubdivision:
    def test_zero_levels_is_identity(self):
        mesh = _flat_quad()
        out = tessellate(mesh, 0)
        assert out.num_triangles == mesh.num_triangles
        assert np.array_equal(out.vertices.positions, mesh.vertices.positions)

    def test_triangle_count_quadruples_per_level(self):
        mesh = _flat_quad()
        for levels in (1, 2, 3):
            out = tessellate(mesh, levels)
            assert out.num_triangles == mesh.num_triangles * 4 ** levels

    def test_shared_edges_are_deduplicated(self):
        # A quad's two triangles share one edge: after one subdivision
        # the shared midpoint must exist once, not twice.
        out = tessellate(_flat_quad(), 1)
        # 4 original + 5 midpoints (4 border edges + 1 diagonal).
        assert out.num_vertices == 9

    def test_flat_surface_stays_flat(self):
        out = tessellate(_flat_quad(), 3)
        assert np.allclose(out.vertices.positions[:, 2], 0.0)

    def test_positions_stay_inside_hull(self):
        out = tessellate(_flat_quad(), 2)
        pos = out.vertices.positions
        assert pos.min() >= 0.0 and pos.max() <= 4.0

    def test_uvs_interpolated_consistently(self):
        # On this quad, u == x/4 everywhere; subdivision must keep that.
        out = tessellate(_flat_quad(), 2)
        assert np.allclose(out.vertices.uvs[:, 0],
                           out.vertices.positions[:, 0] / 4.0)

    def test_mesh_attributes_preserved(self):
        mesh = make_quad(
            np.array([[0, 0, 0], [1, 0, 0], [1, 1, 0], [0, 1, 0]], float),
            "wood", uv_scale=3.0, two_sided=True,
        )
        out = tessellate(mesh, 1)
        assert out.texture == "wood"
        assert out.uv_scale == 3.0
        assert out.two_sided

    def test_closed_mesh_stays_closed(self):
        box = tessellate(make_box((0, 0, 0), (2, 2, 2), "t"), 1)
        # Every directed edge of a closed surface appears... our box has
        # per-face vertices, so just check the count arithmetic holds.
        assert box.num_triangles == 12 * 4


class TestDisplacement:
    def test_displacement_applied_after_subdivision(self):
        def bump(positions, uvs):
            offsets = np.zeros_like(positions)
            offsets[:, 2] = np.sin(uvs[:, 0] * np.pi)
            return offsets

        out = tessellate(_flat_quad(), 2, displacement=bump)
        assert out.vertices.positions[:, 2].max() == pytest.approx(1.0)

    def test_displacement_shape_validated(self):
        with pytest.raises(GeometryError):
            tessellate(_flat_quad(), 1,
                       displacement=lambda p, uv: np.zeros((3, 2)))

    def test_negative_levels_rejected(self):
        with pytest.raises(GeometryError):
            tessellate(_flat_quad(), -1)
