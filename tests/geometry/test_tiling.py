"""Tests for the tiling engine."""

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometry.tiling import TilingEngine


class TestGrid:
    def test_tile_counts_round_up(self):
        engine = TilingEngine(100, 50, tile_size=16)
        assert engine.tiles_x == 7
        assert engine.tiles_y == 4
        assert engine.num_tiles == 28

    def test_edge_tiles_are_clamped(self):
        engine = TilingEngine(100, 50, tile_size=16)
        tile = engine.tile(6, 3)
        assert tile.x1 == 100 and tile.y1 == 50
        assert tile.width == 4 and tile.height == 2

    def test_iter_tiles_row_major(self):
        engine = TilingEngine(32, 32, tile_size=16)
        order = [(t.tx, t.ty) for t in engine.iter_tiles()]
        assert order == [(0, 0), (1, 0), (0, 1), (1, 1)]

    def test_out_of_grid_rejected(self):
        engine = TilingEngine(32, 32, tile_size=16)
        with pytest.raises(GeometryError):
            engine.tile(2, 0)

    def test_rejects_odd_tile_size(self):
        with pytest.raises(GeometryError):
            TilingEngine(32, 32, tile_size=15)


class TestBinning:
    def test_small_triangle_lands_in_one_tile(self):
        engine = TilingEngine(64, 64, tile_size=16)
        tri = np.array([[[2, 2], [10, 2], [2, 10]]], dtype=np.float64)
        bins = engine.bin_triangles(tri)
        assert list(bins) == [(0, 0)]
        assert engine.stats.tile_triangle_pairs == 1

    def test_large_triangle_touches_many_tiles(self):
        engine = TilingEngine(64, 64, tile_size=16)
        tri = np.array([[[0, 0], [63, 0], [0, 63]]], dtype=np.float64)
        bins = engine.bin_triangles(tri)
        # Conservative bounding-box binning covers the whole 4x4 grid.
        assert len(bins) == 16
        assert engine.stats.tiles_touched == 16

    def test_offscreen_triangle_is_dropped(self):
        engine = TilingEngine(64, 64, tile_size=16)
        tri = np.array([[[100, 100], [120, 100], [100, 120]]], dtype=np.float64)
        bins = engine.bin_triangles(tri)
        assert not bins
        assert engine.stats.triangles_binned == 0

    def test_straddling_triangle_partially_clamped(self):
        engine = TilingEngine(64, 64, tile_size=16)
        tri = np.array([[[-50, 5], [10, 5], [10, 12]]], dtype=np.float64)
        bins = engine.bin_triangles(tri)
        assert (0, 0) in bins

    def test_bin_shape_validation(self):
        engine = TilingEngine(64, 64)
        with pytest.raises(GeometryError):
            engine.bin_triangles(np.zeros((2, 3)))
