"""Tests for vertex transform, near clipping and back-face culling."""

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometry.camera import Camera
from repro.geometry.clipping import clip_triangles_near
from repro.geometry.culling import cull_backfaces, signed_ndc_areas
from repro.geometry.mesh import make_quad
from repro.geometry.transform import TransformedTriangles, transform_mesh


def _front_quad():
    corners = np.array(
        [[-1, -1, -5], [1, -1, -5], [1, 1, -5], [-1, 1, -5]], dtype=np.float64
    )
    return make_quad(corners, "t")


def _camera_mvp(width=64, height=64):
    return Camera(eye=(0, 0, 0), target=(0, 0, -1)).view_projection(width, height)


class TestTransformMesh:
    def test_produces_one_clip_triangle_per_mesh_triangle(self):
        tris = transform_mesh(_front_quad(), _camera_mvp())
        assert tris.num_triangles == 2
        assert tris.clip_positions.shape == (2, 3, 4)

    def test_model_matrix_applies_before_view(self):
        from repro.geometry.linalg import translate

        base = transform_mesh(_front_quad(), _camera_mvp())
        moved = transform_mesh(_front_quad(), _camera_mvp(), model=translate(0, 0, -5))
        w0 = base.clip_positions[0, 0, 3]
        w1 = moved.clip_positions[0, 0, 3]
        assert w1 > w0  # further from camera -> larger clip w

    def test_rejects_bad_matrix(self):
        with pytest.raises(GeometryError):
            transform_mesh(_front_quad(), np.eye(3))


class TestNearClipping:
    def test_fully_visible_passes_through(self):
        tris = transform_mesh(_front_quad(), _camera_mvp())
        clipped = clip_triangles_near(tris)
        assert clipped.num_triangles == 2

    def test_fully_behind_is_removed(self):
        corners = np.array(
            [[-1, -1, 5], [1, -1, 5], [1, 1, 5], [-1, 1, 5]], dtype=np.float64
        )
        tris = transform_mesh(make_quad(corners, "t"), _camera_mvp())
        assert clip_triangles_near(tris).num_triangles == 0

    def test_straddling_triangle_is_retessellated(self):
        # A quad spanning from in front of to behind the camera.
        corners = np.array(
            [[-1, 0, 5], [1, 0, 5], [1, 0, -50], [-1, 0, -50]], dtype=np.float64
        )
        mesh = make_quad(corners, "t", two_sided=True)
        tris = transform_mesh(mesh, _camera_mvp())
        clipped = clip_triangles_near(tris)
        assert clipped.num_triangles >= 2
        # Everything left lies strictly in front of the near plane.
        dist = clipped.clip_positions[:, :, 2] + clipped.clip_positions[:, :, 3]
        assert np.all(dist > 0)

    def test_clipped_uvs_are_interpolated_in_range(self):
        corners = np.array(
            [[-1, 0, 5], [1, 0, 5], [1, 0, -50], [-1, 0, -50]], dtype=np.float64
        )
        mesh = make_quad(corners, "t", two_sided=True)
        clipped = clip_triangles_near(transform_mesh(mesh, _camera_mvp()))
        assert clipped.uvs.min() >= -1e-9
        assert clipped.uvs.max() <= 1.0 + 1e-9


class TestBackfaceCulling:
    def test_front_face_kept_back_face_culled(self):
        tris = transform_mesh(_front_quad(), _camera_mvp())
        kept = cull_backfaces(tris)
        assert kept.num_triangles == 2

        flipped = TransformedTriangles(
            clip_positions=tris.clip_positions[:, ::-1, :],
            uvs=tris.uvs[:, ::-1, :],
            texture="t",
        )
        assert cull_backfaces(flipped).num_triangles == 0

    def test_two_sided_keeps_both_windings(self):
        tris = transform_mesh(_front_quad(), _camera_mvp())
        flipped = TransformedTriangles(
            clip_positions=tris.clip_positions[:, ::-1, :],
            uvs=tris.uvs[:, ::-1, :],
            texture="t",
            two_sided=True,
        )
        assert cull_backfaces(flipped).num_triangles == 2

    def test_degenerate_triangles_always_removed(self):
        tris = transform_mesh(_front_quad(), _camera_mvp())
        degenerate = TransformedTriangles(
            clip_positions=np.repeat(
                tris.clip_positions[:, :1, :], 3, axis=1
            ),
            uvs=tris.uvs,
            texture="t",
            two_sided=True,
        )
        assert cull_backfaces(degenerate).num_triangles == 0

    def test_signed_areas_flip_with_winding(self):
        tris = transform_mesh(_front_quad(), _camera_mvp())
        areas = signed_ndc_areas(tris)
        flipped = TransformedTriangles(
            clip_positions=tris.clip_positions[:, ::-1, :],
            uvs=tris.uvs[:, ::-1, :],
            texture="t",
        )
        assert np.allclose(signed_ndc_areas(flipped), -areas)
