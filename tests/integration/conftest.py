"""Everything under tests/integration/ is marked ``integration``.

Applied here (rather than per-test) so the marker can never drift out
of sync with the directory layout; select with ``pytest -m integration``
or exclude with ``-m 'not integration'``.
"""

import pytest


def pytest_collection_modifyitems(items):
    for item in items:
        item.add_marker(pytest.mark.integration)
