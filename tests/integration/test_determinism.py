"""Determinism anchors: two sessions must agree bit-for-bit.

The repository promises (README) that all content and experiments are
seeded and reproducible. These tests pin that promise: independent
sessions, fresh scene builds and repeated evaluations must produce
identical numbers — the property every recorded result in
EXPERIMENTS.md relies on.
"""

import numpy as np

from repro.config import GpuConfig
from repro.core.scenarios import SCENARIOS
from repro.renderer.session import RenderSession
from repro.study.users import UserStudy
from repro.workloads.proctex import fbm_noise


class TestContentDeterminism:
    def test_noise_is_environment_stable(self):
        # Seeded PCG64 + fixed op order: exact same field every call.
        a = fbm_noise(32, seed=42)
        b = fbm_noise(32, seed=42)
        assert np.array_equal(a, b)

    def test_scene_rebuild_is_identical(self):
        from repro.workloads.games import _doom3_scene

        _doom3_scene.cache_clear()
        first = _doom3_scene()
        tex_a = {k: v.data.copy() for k, v in first.textures.items()}
        _doom3_scene.cache_clear()
        second = _doom3_scene()
        for name, data in tex_a.items():
            assert np.array_equal(second.textures[name].data, data)
        _doom3_scene.cache_clear()

    def test_user_study_population_stable(self):
        a = UserStudy(seed=2018)
        b = UserStudy(seed=2018)
        for pa, pb in zip(a.participants, b.participants):
            assert pa.quality_weight == pb.quality_weight
            assert pa.quality_jnd == pb.quality_jnd


class TestPipelineDeterminism:
    def test_independent_sessions_agree(self, mini_workload):
        results = []
        for _ in range(2):
            session = RenderSession(GpuConfig(), scale=1.0, scale_caches=False)
            capture = session.capture_frame(mini_workload, 0)
            r = session.evaluate(capture, SCENARIOS["patu"], 0.4)
            results.append(r)
        a, b = results
        assert a.mssim == b.mssim
        assert a.frame_cycles == b.frame_cycles
        assert a.total_energy_nj == b.total_energy_nj
        assert a.hierarchy.dram_bytes == b.hierarchy.dram_bytes
        assert a.events.trilinear_samples == b.events.trilinear_samples

    def test_repeated_evaluation_agrees(self, session, capture):
        a = session.evaluate(capture, SCENARIOS["afssim_n_txds"], 0.3)
        b = session.evaluate(capture, SCENARIOS["afssim_n_txds"], 0.3)
        assert a.mssim == b.mssim
        assert a.frame_cycles == b.frame_cycles
        assert a.quad_divergence == b.quad_divergence


class TestGoldenInvariants:
    """Structural facts of the mini capture that any refactor must keep.

    These are deliberately *invariants* (exact integer relationships),
    not float snapshots, so they survive numerical library changes
    while still catching logic regressions.
    """

    def test_capture_structure(self, capture):
        assert capture.num_pixels > 0
        # Every anisotropic pixel has at least 2 samples; none above 16.
        assert int(capture.n.min()) >= 1
        assert int(capture.n.max()) <= 16
        assert capture.sample_row_ptr[-1] == capture.n.sum()
        assert capture.af_lines.size == 8 * capture.n.sum()

    def test_baseline_events_exact(self, session, capture):
        base = session.evaluate(capture, SCENARIOS["baseline"], 1.0)
        assert base.events.trilinear_samples == int(capture.n.sum())
        assert base.events.address_samples == int(capture.n.sum())
        assert base.events.l1_accesses == 8 * int(capture.n.sum())
        assert base.events.hash_insertions == 0

    def test_af_off_events_exact(self, session, capture):
        off = session.evaluate(capture, SCENARIOS["afssim_n"], 0.0)
        assert off.events.trilinear_samples == capture.num_pixels
        # Stage-1 approximation: one address sample per approximated
        # pixel, N for the rest (isotropic pixels).
        aniso = int((capture.n > 1).sum())
        iso_samples = int(capture.n[capture.n == 1].sum())
        assert off.events.address_samples == aniso + iso_samples
