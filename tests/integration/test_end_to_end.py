"""End-to-end integration tests across the whole stack.

These exercise the public API exactly as the README quickstart does,
on real (but small-scale) Table II workloads, and assert the paper's
headline *relationships* hold end to end.
"""

import pytest

from repro import (
    BASELINE_CONFIG,
    RenderSession,
    SCENARIOS,
    get_workload,
    workload_names,
)
from repro.replay.vsync import VsyncSimulator, nominal_frame_cycles
from repro.study.users import UserStudy


@pytest.fixture(scope="module")
def small_session():
    return RenderSession(scale=0.1)


@pytest.fixture(scope="module")
def hl2_capture(small_session):
    return small_session.capture_frame(get_workload("HL2-1600x1200"), 0)


class TestQuickstartFlow:
    def test_readme_quickstart(self, small_session, hl2_capture):
        result = small_session.evaluate(hl2_capture, SCENARIOS["patu"], 0.4)
        assert 0.85 < result.mssim <= 1.0
        assert 0.0 < result.approximation_rate < 1.0
        assert result.fps > 0

    def test_all_game_workloads_render(self, small_session):
        # One frame of every Table II configuration goes through the
        # full pipeline without error.
        for name in workload_names():
            capture = small_session.capture_frame(get_workload(name), 0)
            assert capture.num_pixels > 0
            assert capture.mean_anisotropy >= 1.0


class TestHeadlineClaims:
    """The paper's core result chain on one workload."""

    def _eval(self, session, capture, scenario, threshold):
        return session.evaluate(capture, SCENARIOS[scenario], threshold)

    def test_af_off_fast_but_ugly_patu_balanced(self, small_session, hl2_capture):
        base = self._eval(small_session, hl2_capture, "baseline", 1.0)
        off = self._eval(small_session, hl2_capture, "afssim_n", 0.0)
        patu = self._eval(small_session, hl2_capture, "patu", 0.4)
        # AF-off is fastest but lowest quality.
        assert off.frame_cycles <= patu.frame_cycles <= base.frame_cycles
        assert off.mssim < patu.mssim <= 1.0

    def test_patu_reduces_texture_work_not_correctness(
        self, small_session, hl2_capture
    ):
        base = self._eval(small_session, hl2_capture, "baseline", 1.0)
        patu = self._eval(small_session, hl2_capture, "patu", 0.4)
        assert patu.events.trilinear_samples < base.events.trilinear_samples
        assert patu.hierarchy.dram_bytes <= base.hierarchy.dram_bytes
        assert patu.energy.total_nj < base.energy.total_nj

    def test_resolution_trend(self, small_session):
        """Higher resolution -> more texture work -> more PATU benefit
        (Section VII-B: 'PATU provides more speedup for applications
        with higher resolution')."""
        speedups = {}
        for name in ("HL2-1600x1200", "HL2-640x480"):
            capture = small_session.capture_frame(get_workload(name), 0)
            base = self._eval(small_session, capture, "baseline", 1.0)
            patu = self._eval(small_session, capture, "patu", 0.4)
            speedups[name] = base.frame_cycles / patu.frame_cycles
        assert speedups["HL2-1600x1200"] >= speedups["HL2-640x480"]

    def test_replay_to_user_study_pipeline(self, small_session):
        """Full Section VI/VII-D flow: frames -> vsync replay -> scores."""
        wl = get_workload("doom3-640x480")
        study = UserStudy()
        vsync = VsyncSimulator()
        scores = {}
        for threshold, scenario in ((0.0, "afssim_n"), (0.4, "patu"),
                                    (1.0, "baseline")):
            cycles = []
            quality = 0.0
            for frame in range(3):
                capture = small_session.capture_frame(wl, frame)
                r = small_session.evaluate(capture, SCENARIOS[scenario], threshold)
                cycles.append(nominal_frame_cycles(r.frame_cycles, small_session.scale))
                quality += r.mssim / 3
            stats = vsync.replay(cycles)
            scores[threshold] = study.evaluate(
                quality, stats.average_fps, stats.lag_fraction
            ).mean_score
        assert all(1.0 <= s <= 5.0 for s in scores.values())


class TestCrossConfigConsistency:
    def test_same_capture_under_bigger_caches_is_never_slower(
        self, small_session, hl2_capture
    ):
        big = RenderSession(
            BASELINE_CONFIG.scaled(texture_l2=4), scale=small_session.scale
        )
        base = small_session.evaluate(hl2_capture, SCENARIOS["baseline"], 1.0)
        scaled = big.evaluate(hl2_capture, SCENARIOS["baseline"], 1.0)
        assert scaled.hierarchy.dram_bytes <= base.hierarchy.dram_bytes
        assert scaled.frame_cycles <= base.frame_cycles + 1e-6

    def test_events_add_up_across_scenarios(self, small_session, hl2_capture):
        for name, threshold in (
            ("baseline", 1.0), ("afssim_n", 0.4),
            ("afssim_n_txds", 0.4), ("patu", 0.4),
        ):
            r = small_session.evaluate(hl2_capture, SCENARIOS[name], threshold)
            assert r.events.l1_accesses == r.hierarchy.l1.accesses
            assert r.events.l2_accesses == r.hierarchy.l2.accesses
            assert r.events.dram_lines == r.hierarchy.dram.lines_fetched
            assert r.events.address_samples >= r.events.trilinear_samples
