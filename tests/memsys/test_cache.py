"""Tests for the set-associative LRU cache simulator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import CacheConfig
from repro.errors import ConfigError
from repro.memsys.cache import CacheSim, collapse_consecutive


def _tiny_cache(sets=4, ways=2):
    return CacheSim(CacheConfig(size_bytes=sets * ways * 64, ways=ways))


class TestCollapseConsecutive:
    def test_removes_only_adjacent_duplicates(self):
        stream = np.array([1, 1, 2, 2, 2, 1, 3])
        collapsed, dropped = collapse_consecutive(stream)
        assert collapsed.tolist() == [1, 2, 1, 3]
        assert dropped == 3

    def test_empty_stream(self):
        collapsed, dropped = collapse_consecutive(np.array([], dtype=np.int64))
        assert collapsed.size == 0 and dropped == 0

    @given(st.lists(st.integers(min_value=0, max_value=5), max_size=64))
    def test_collapse_is_exact_for_lru(self, stream):
        """Collapsing adjacent duplicates must not change miss behaviour."""
        arr = np.asarray(stream, dtype=np.int64)
        plain = _tiny_cache()
        misses_plain = plain.access(arr)
        # A second simulator fed the pre-collapsed stream.
        pre, _ = collapse_consecutive(arr)
        collapsed_sim = _tiny_cache()
        misses_collapsed = collapsed_sim.access(pre)
        assert misses_plain.tolist() == misses_collapsed.tolist()


class TestLruBehaviour:
    def test_cold_miss_then_hit(self):
        sim = _tiny_cache()
        assert sim.access(np.array([100])).tolist() == [100]
        assert sim.access(np.array([100])).size == 0
        assert sim.stats.hits == 1
        assert sim.stats.misses == 1

    def test_capacity_eviction_is_lru(self):
        sim = _tiny_cache(sets=1, ways=2)
        # Fill the single set with A, B; touch A; insert C -> evicts B.
        sim.access(np.array([0, 4, 0, 8]))
        misses = sim.access(np.array([4]))
        assert misses.tolist() == [4]  # B was the LRU victim

    def test_lru_order_updates_on_hit(self):
        sim = _tiny_cache(sets=1, ways=2)
        sim.access(np.array([0, 4]))  # A, B resident
        sim.access(np.array([0]))  # touch A -> B is LRU
        sim.access(np.array([8]))  # C evicts B
        assert sim.access(np.array([0])).size == 0  # A still resident
        assert sim.access(np.array([4])).tolist() == [4]  # B gone

    def test_sets_are_independent(self):
        sim = _tiny_cache(sets=4, ways=1)
        # Addresses 0..3 map to distinct sets -> all resident at once.
        sim.access(np.arange(4))
        assert sim.access(np.arange(4)).size == 0

    def test_working_set_within_capacity_always_hits(self):
        sim = _tiny_cache(sets=4, ways=2)
        working_set = np.arange(8)  # exactly capacity
        sim.access(working_set)
        for _ in range(3):
            assert sim.access(working_set).size == 0

    def test_streaming_working_set_never_hits(self):
        sim = _tiny_cache(sets=2, ways=1)
        stream = np.arange(0, 64)
        misses = sim.access(stream)
        assert misses.size == 64

    def test_reset_clears_contents(self):
        sim = _tiny_cache()
        sim.access(np.array([1, 2, 3]))
        sim.reset()
        assert sim.stats.accesses == 0
        assert sim.access(np.array([1])).tolist() == [1]

    def test_miss_stream_preserves_order(self):
        sim = _tiny_cache(sets=1, ways=1)
        misses = sim.access(np.array([0, 4, 8, 4]))
        assert misses.tolist() == [0, 4, 8, 4]


class TestConfiguration:
    def test_non_power_of_two_sets_rejected(self):
        with pytest.raises(ConfigError):
            CacheSim(CacheConfig(size_bytes=3 * 64, ways=1))

    def test_hit_rate_statistics(self):
        sim = _tiny_cache()
        sim.access(np.array([0, 0, 0, 0]))
        assert sim.stats.hit_rate == pytest.approx(0.75)

    @settings(max_examples=30)
    @given(st.lists(st.integers(min_value=0, max_value=63), max_size=128))
    def test_hits_plus_misses_equals_accesses(self, stream):
        sim = _tiny_cache()
        arr = np.asarray(stream, dtype=np.int64)
        misses = sim.access(arr)
        assert sim.stats.accesses == len(stream)
        assert sim.stats.hits + len(misses) == len(stream)
