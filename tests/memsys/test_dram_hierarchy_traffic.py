"""Tests for the DRAM model, the two-level hierarchy and traffic accounting."""

import numpy as np
import pytest

from repro.config import GpuConfig, MemoryConfig
from repro.errors import PipelineError
from repro.memsys.dram import DramModel, DramStats, ROW_BYTES
from repro.memsys.hierarchy import TextureMemoryHierarchy
from repro.memsys.traffic import BandwidthBreakdown, frame_breakdown


class TestDramModel:
    def test_sequential_lines_hit_open_rows(self):
        model = DramModel(MemoryConfig())
        lines = np.arange(64)  # 64 x 64B = 2 rows
        stats = model.observe(lines)
        assert stats.lines_fetched == 64
        # Only the row-crossing accesses miss: 2 rows -> 62 hits.
        assert stats.row_hits == 62

    def test_strided_lines_miss_rows(self):
        model = DramModel(MemoryConfig())
        lines = np.arange(0, 64 * ROW_BYTES, ROW_BYTES) // 64
        stats = model.observe(lines)
        assert stats.row_hit_rate == 0.0

    def test_transfer_cycles_proportional_to_bytes(self):
        cfg = MemoryConfig()
        model = DramModel(cfg)
        stats = DramStats(lines_fetched=100)
        assert model.transfer_cycles(stats) == pytest.approx(
            100 * 64 / cfg.bytes_per_cycle
        )

    def test_latency_grows_with_row_misses(self):
        cfg = MemoryConfig()
        model = DramModel(cfg)
        friendly = DramStats(lines_fetched=100, row_hits=99)
        hostile = DramStats(lines_fetched=100, row_hits=0)
        assert model.average_latency(hostile) > model.average_latency(friendly)
        assert model.average_latency(hostile) == pytest.approx(
            cfg.base_latency_cycles + cfg.row_miss_penalty_cycles
        )

    def test_empty_stream(self):
        model = DramModel(MemoryConfig())
        stats = model.observe(np.array([], dtype=np.int64))
        assert stats.lines_fetched == 0
        assert model.average_latency(stats) == MemoryConfig().base_latency_cycles


class TestHierarchy:
    def _hier(self):
        return TextureMemoryHierarchy(GpuConfig())

    def test_repeated_tile_stream_hits_l1(self):
        hier = self._hier()
        lines = np.arange(32)
        stats = hier.process_frame([(0, lines), (0, lines.copy())])
        assert stats.l1.accesses == 64
        assert stats.l1.misses == 32  # second pass all hits

    def test_l1s_are_private_per_unit(self):
        hier = self._hier()
        lines = np.arange(32)
        # The same lines on different units miss both L1s but the
        # second unit's misses hit in the shared L2.
        stats = hier.process_frame([(0, lines), (1, lines.copy())])
        assert stats.l1.misses == 64
        assert stats.l2.accesses == 64
        assert stats.l2.misses == 32
        assert stats.dram.lines_fetched == 32

    def test_dram_sees_only_l2_misses(self):
        hier = self._hier()
        lines = np.arange(128)
        stats = hier.process_frame([(0, lines)])
        assert stats.dram.lines_fetched == stats.l2.misses

    def test_invalid_unit_rejected(self):
        hier = self._hier()
        with pytest.raises(PipelineError):
            hier.process_frame([(99, np.array([1]))])

    def test_process_frame_resets_state(self):
        hier = self._hier()
        lines = np.arange(16)
        first = hier.process_frame([(0, lines)])
        second = hier.process_frame([(0, lines.copy())])
        assert first.l1.misses == second.l1.misses  # no cross-frame warmup


class TestTrafficBreakdown:
    def test_totals_and_fractions(self):
        bd = BandwidthBreakdown(
            texture_bytes=700, color_bytes=200, depth_bytes=50, geometry_bytes=50
        )
        assert bd.total_bytes == 1000
        assert bd.texture_fraction == pytest.approx(0.7)
        assert bd.as_dict()["texture"] == 700

    def test_frame_breakdown_wiring(self):
        bd = frame_breakdown(
            texture_dram_bytes=10_000,
            visible_pixels=1000,
            fragments_generated=1500,
            fragments_passed=1000,
            vertices=100,
        )
        assert bd.texture_bytes == 10_000
        assert bd.color_bytes == 4000  # one RGBA8 write per pixel
        assert bd.geometry_bytes == 3200
        assert bd.depth_bytes == int(2500 * 4 * 0.05)

    def test_empty_frame(self):
        bd = frame_breakdown(
            texture_dram_bytes=0, visible_pixels=0,
            fragments_generated=0, fragments_passed=0, vertices=0,
        )
        assert bd.total_bytes == 0
        assert bd.texture_fraction == 0.0
