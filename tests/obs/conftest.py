"""Fixtures for the observability suite.

The global :data:`repro.obs.TELEMETRY` registry is process-wide state;
every test in this package gets it reset and disabled on both sides so
no spans, counters or sinks leak between tests (or into the rest of
the suite).
"""

from __future__ import annotations

import pytest

from repro.obs import TELEMETRY


@pytest.fixture(autouse=True)
def clean_global_telemetry():
    TELEMETRY.enabled = False
    TELEMETRY.progress_sink = None
    TELEMETRY.reset()
    yield TELEMETRY
    TELEMETRY.enabled = False
    TELEMETRY.progress_sink = None
    TELEMETRY.reset()
