"""CLI coverage: ``profile`` plus the ``--trace/--metrics/--verbose`` flags."""

from __future__ import annotations

import json

import pytest

from repro.cli import _resolve_workload, main
from repro.errors import WorkloadError
from repro.obs import TELEMETRY, read_metrics_jsonl


def test_profile_writes_trace_and_metrics(tmp_path, capsys):
    trace = tmp_path / "trace.json"
    metrics = tmp_path / "metrics.jsonl"
    rc = main([
        "profile", "hl2", "--frames", "1", "--scale", "0.05",
        "--trace", str(trace), "--metrics", str(metrics),
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "== stage timers ==" in out
    assert "session.capture_frame" in out
    assert "patu.stage1_approved" in out

    document = json.loads(trace.read_text())
    x_names = {
        e["name"] for e in document["traceEvents"] if e["ph"] == "X"
    }
    assert {"profile", "session.capture_frame", "session.evaluate",
            "patu.decide", "memsys.process_frame"} <= x_names

    records = read_metrics_jsonl(metrics)
    assert len(records) == 1
    assert records[0]["workload"] == "HL2-640x480"
    assert records[0]["counters"]["texture.trilinear_samples"] > 0

    # The CLI must disarm the global registry on the way out.
    assert not TELEMETRY.enabled
    assert TELEMETRY.progress_sink is None


def test_profile_verbose_progress_on_stderr(tmp_path, capsys):
    rc = main([
        "profile", "hl2", "--frames", "1", "--scale", "0.05", "--verbose",
        "--trace", str(tmp_path / "t.json"),
        "--metrics", str(tmp_path / "m.jsonl"),
    ])
    assert rc == 0
    captured = capsys.readouterr()
    assert "captured HL2-640x480 frame 0" in captured.err
    assert "evaluated" in captured.err
    assert "captured" not in captured.out  # stdout stays pipeable


def test_compare_metrics_one_record_per_evaluation(tmp_path, capsys):
    metrics = tmp_path / "m.jsonl"
    rc = main([
        "compare", "hl2", "--scale", "0.05", "--metrics", str(metrics),
    ])
    assert rc == 0
    records = read_metrics_jsonl(metrics)
    # The quickstart comparison scores the baseline once, then all four
    # scenarios.
    assert len(records) == 5
    assert [r["scenario"] for r in records] == [
        "baseline", "baseline", "afssim_n", "afssim_n_txds", "patu",
    ]
    assert "PATU" in capsys.readouterr().out


def test_experiment_emit_metrics(tmp_path, capsys):
    metrics = tmp_path / "m.jsonl"
    rc = main([
        "experiment", "fig19", "--frames", "1", "--scale", "0.05",
        "--workloads", "HL2-640x480", "--emit-metrics", str(metrics),
    ])
    assert rc == 0
    records = read_metrics_jsonl(metrics)
    assert records, "experiment evaluations should produce frame records"
    assert all(r["workload"] == "HL2-640x480" for r in records)


def test_workload_resolution():
    assert _resolve_workload("hl2").name == "HL2-640x480"
    assert _resolve_workload("DOOM3").name == "doom3-640x480"
    assert _resolve_workload("HL2-1280x1024").name == "HL2-1280x1024"
    with pytest.raises(WorkloadError):
        _resolve_workload("quake")


def test_unwritable_trace_path_fails_cleanly(tmp_path, capsys):
    rc = main([
        "profile", "hl2", "--frames", "1", "--scale", "0.05",
        "--trace", str(tmp_path / "missing" / "dir" / "t.json"),
        "--metrics", str(tmp_path / "m.jsonl"),
    ])
    assert rc == 1
    captured = capsys.readouterr()
    assert "error: cannot write trace" in captured.err
    assert "== stage timers ==" in captured.out  # run itself completed
    assert (tmp_path / "m.jsonl").exists()  # the other artifact still lands
    assert not TELEMETRY.enabled


def test_unknown_workload_exit_code(tmp_path, capsys):
    rc = main(["profile", "quake",
               "--trace", str(tmp_path / "t.json"),
               "--metrics", str(tmp_path / "m.jsonl")])
    assert rc == 1
    assert "unknown workload" in capsys.readouterr().err
    assert not TELEMETRY.enabled
