"""Benchmark-fleet tests: matrix expansion and per-cell ledger records.

``benchmarks/fleet.py`` is the cross-config driver: every matrix cell
must land as exactly one ``fleet`` ledger record whose config digest
identifies that cell — the property the multi-ledger trend gate builds
on.
"""

from __future__ import annotations

import importlib.util
import json
import pathlib
import sys

import pytest

from repro.obs import read_ledger


def load_fleet_module():
    root = pathlib.Path(__file__).resolve().parents[2]
    spec = importlib.util.spec_from_file_location(
        "fleet_bench", root / "benchmarks" / "fleet.py"
    )
    module = importlib.util.module_from_spec(spec)
    # Registered before exec so the FleetCell dataclass can resolve its
    # postponed annotations against its own module.
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def fleet():
    return load_fleet_module()


class TestMatrixExpansion:
    def test_full_cross_product_in_stable_order(self, fleet):
        cells = fleet.expand_matrix(
            ["a", "b"], [0.25, 0.5], [1, 2], ["binned"]
        )
        assert len(cells) == 8
        assert [c.workload for c in cells[:4]] == ["a"] * 4
        assert cells[0].config() == {
            "workload": "a", "scale": 0.25, "jobs": 1, "raster": "binned",
        }

    def test_duplicate_axis_values_are_deduplicated(self, fleet):
        cells = fleet.expand_matrix(
            ["a", "a", "b"], [0.25, 0.25], [1], ["binned", "binned"]
        )
        assert len(cells) == 2
        assert [c.workload for c in cells] == ["a", "b"]

    def test_cells_are_hashable_points(self, fleet):
        cell = fleet.FleetCell(
            workload="a", scale=0.25, jobs=1, raster="binned"
        )
        assert cell == fleet.FleetCell(
            workload="a", scale=0.25, jobs=1, raster="binned"
        )
        assert len({cell, cell}) == 1


@pytest.mark.slow
class TestQuickMatrix:
    def test_quick_run_appends_one_record_per_cell(
        self, fleet, tmp_path, capsys
    ):
        ledger = tmp_path / "ledger"
        out = tmp_path / "fleet.json"
        rc = fleet.main([
            "--quick", "--ledger", str(ledger), "--out", str(out),
        ])
        assert rc == 0
        records = read_ledger(ledger)
        assert len(records) >= 4  # the 2x2 mini-matrix
        assert {r["kind"] for r in records} == {"fleet"}
        # One record per distinct cell: digests are pairwise distinct
        # and name the cell's exact config.
        digests = [r["config_digest"] for r in records]
        assert len(set(digests)) == len(records)
        for record in records:
            config = record["config"]
            assert {"workload", "scale", "jobs", "raster"} <= set(config)
            assert record["metrics"]["cell_ms"] > 0
            assert 0.0 < record["metrics"]["mssim"] <= 1.0
            assert record["machine"]["calibration_ms"] > 0
        workloads = {r["config"]["workload"] for r in records}
        assert workloads == set(fleet.QUICK_WORKLOADS)
        rasters = {r["config"]["raster"] for r in records}
        assert rasters == set(fleet.QUICK_RASTERS)
        # The JSON summary mirrors the ledger cells.
        payload = json.loads(out.read_text())
        assert payload["benchmark"] == "fleet"
        assert len(payload["cells"]) == len(records)

    def test_no_ledger_flag_suppresses_records(self, fleet, tmp_path):
        ledger = tmp_path / "ledger"
        rc = fleet.main([
            "--quick", "--no-ledger", "--ledger", str(ledger),
            "--out", str(tmp_path / "fleet.json"),
        ])
        assert rc == 0
        assert read_ledger(ledger) == []
