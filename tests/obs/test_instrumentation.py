"""Pipeline instrumentation: spans/counters emitted by a real render."""

from __future__ import annotations

import json

import pytest

from repro.core.patu import PerceptionAwareTextureUnit
from repro.core.scenarios import SCENARIOS
from repro.obs import TELEMETRY, jsonable


@pytest.fixture()
def enabled(clean_global_telemetry):
    TELEMETRY.enabled = True
    return TELEMETRY


class TestSessionTelemetry:
    def test_evaluate_emits_frame_record_and_counters(self, enabled, session, capture):
        result = session.evaluate(capture, SCENARIOS["patu"], 0.4)
        records = TELEMETRY.frame_records
        assert len(records) == 1
        record = records[0]
        assert record["scenario"] == "patu"
        assert record["mssim"] == pytest.approx(result.mssim)
        # The acceptance-criteria fields, via counters and the record.
        counters = record["counters"]
        assert counters["patu.stage1_approved"] >= 0
        assert counters["patu.stage2_approved"] >= 0
        assert counters["memsys.l1_hit"] + counters["memsys.l1_miss"] > 0
        assert record["events"]["trilinear_samples"] > 0
        assert record["events"]["address_samples"] > 0
        assert record["frame_cycles"] > 0
        assert record["energy"]["total_nj"] > 0
        stage_names = set(record["stages"])
        assert {"session.evaluate", "patu.decide",
                "session.simulate_hierarchy", "session.frame_timing",
                "memsys.process_frame"} <= stage_names

    def test_capture_spans_nested_under_capture_frame(
        self, enabled, session, mini_workload
    ):
        session.capture_frame(mini_workload, 1)
        spans = {s.name: s for s in TELEMETRY.spans}
        assert spans["session.capture_frame"].depth == 0
        for child in ("capture.gbuffer", "capture.texture_filtering",
                      "capture.csr_merge"):
            assert spans[child].depth == 1
        assert spans["geometry.transform"].depth == 2
        assert TELEMETRY.counter_value("capture.visible_pixels") > 0
        assert TELEMETRY.counter_value("texture.trilinear_samples") > 0

    def test_counters_aggregate_over_multiple_evaluations(
        self, enabled, session, capture
    ):
        session.evaluate(capture, SCENARIOS["patu"], 0.4)
        once = TELEMETRY.counter_value("patu.pixels")
        session.evaluate(capture, SCENARIOS["patu"], 0.6)
        assert TELEMETRY.counter_value("patu.pixels") == 2 * once
        assert len(TELEMETRY.frame_records) == 2

    def test_disabled_session_adds_no_records(self, session, capture):
        assert not TELEMETRY.enabled
        session.evaluate(capture, SCENARIOS["patu"], 0.4)
        assert TELEMETRY.spans == []
        assert TELEMETRY.frame_records == []
        assert TELEMETRY.metrics.counter_totals() == {}


class TestToDict:
    def test_frame_result_to_dict_is_json_ready(self, session, capture):
        result = session.evaluate(capture, SCENARIOS["patu"], 0.4)
        data = result.to_dict()
        json.dumps(jsonable(data))  # must not raise
        assert data["workload"] == capture.workload_name
        assert data["scenario"] == "patu"
        assert data["hierarchy"]["l1"]["accesses"] > 0
        assert data["bandwidth"]["total"] >= data["bandwidth"]["texture"]
        assert data["frame_timing"]["geometry_cycles"] >= 0
        assert data["events"]["trilinear_samples"] > 0

    def test_raster_and_hierarchy_to_dict(self, session, capture):
        result = session.evaluate(capture, SCENARIOS["baseline"], 1.0)
        hier = result.hierarchy.to_dict()
        assert set(hier) == {"l1", "l2", "dram"}
        assert hier["l1"]["hits"] + hier["l1"]["misses"] == hier["l1"]["accesses"]
        assert hier["dram"]["bytes_fetched"] == hier["dram"]["lines_fetched"] * 64

    def test_patu_decision_to_dict(self, capture):
        device = PerceptionAwareTextureUnit(SCENARIOS["patu"], 0.4)
        decision = device.decide(capture.n, capture.txds)
        data = decision.to_dict()
        json.dumps(data)
        assert data["pixels"] == capture.num_pixels
        assert (
            data["stage1_approved"] + data["stage2_approved"]
            == data["approximated"]
        )
        assert sum(data["mode_counts"].values()) == data["pixels"]
        assert data["total_trilinear"] == decision.total_trilinear
