"""Run-ledger tests: record schema, atomic appends, CLI emitters."""

from __future__ import annotations

import importlib.util
import json
import pathlib

import pytest

from repro.errors import LedgerError, SchemaError
from repro.obs import (
    LEDGER_SCHEMA,
    TELEMETRY,
    append_record,
    build_record,
    config_digest,
    ledger_path,
    read_ledger,
    validate_record,
)
from repro.obs.ledger import KINDS, trend_metrics


def minimal_record(**overrides):
    record = build_record(
        "profile", command="repro profile hl2", config={"frames": 1},
        duration_s=1.0, calibration_ms=2.0,
    )
    record.update(overrides)
    return record


class TestConfigDigest:
    def test_stable_and_order_insensitive(self):
        a = config_digest({"frames": 2, "scale": 0.25})
        b = config_digest({"scale": 0.25, "frames": 2})
        assert a == b
        assert len(a) == 16

    def test_different_configs_differ(self):
        assert config_digest({"frames": 2}) != config_digest({"frames": 3})


class TestBuildRecord:
    def test_record_has_published_shape(self):
        record = minimal_record()
        assert record["schema"] == LEDGER_SCHEMA
        assert record["kind"] == "profile"
        assert record["kind"] in KINDS
        assert record["machine"]["calibration_ms"] == 2.0
        assert "python" in record["machine"]
        assert record["metrics"]["duration_s"] == 1.0
        # The whole record is already plain JSON.
        json.dumps(record)

    def test_kind_feeds_the_digest(self):
        a = build_record("profile", config={"x": 1}, calibration_ms=1.0)
        b = build_record("verify", config={"x": 1}, calibration_ms=1.0)
        assert a["config_digest"] != b["config_digest"]

    def test_telemetry_rollups_land_in_record(self):
        TELEMETRY.enabled = True
        with TELEMETRY.span("stage.alpha"):
            pass
        TELEMETRY.count("texture.fragments", 7)
        TELEMETRY.observe("session.mssim", 0.9)
        TELEMETRY.observe("quality.approximation_rate", 0.5)
        record = build_record(
            "profile", telemetry=TELEMETRY, calibration_ms=1.0,
            store={"hits": 3, "misses": 1, "writes": 1},
        )
        assert record["telemetry"]["counters"]["texture.fragments"] == 7
        assert "stage.alpha" in record["telemetry"]["stages"]
        assert record["quality"]["mssim"]["count"] == 1
        assert record["quality"]["approximation_rate"]["mean"] == 0.5
        metrics = record["metrics"]
        assert metrics["counter.texture.fragments"] == 7.0
        assert metrics["store.hits"] == 3.0
        assert metrics["quality.mssim_mean"] == pytest.approx(0.9)
        assert "stage_ms.stage.alpha" in metrics

    def test_trend_metrics_are_flat_floats(self):
        metrics = trend_metrics(None, store={"hits": 2}, extra={"x": 3})
        assert metrics == {"store.hits": 2.0, "x": 3.0}
        assert all(isinstance(v, float) for v in metrics.values())


class TestValidation:
    def test_round_trips(self):
        validate_record(minimal_record())

    def test_unknown_major_rejected(self):
        with pytest.raises(SchemaError):
            validate_record(minimal_record(schema=LEDGER_SCHEMA + 1))

    def test_missing_keys_rejected(self):
        record = minimal_record()
        del record["machine"]
        with pytest.raises(LedgerError, match="machine"):
            validate_record(record)

    def test_non_numeric_metric_rejected(self):
        record = minimal_record()
        record["metrics"]["bad"] = "fast"
        with pytest.raises(LedgerError, match="bad"):
            validate_record(record)


class TestAppendRead:
    def test_append_then_read(self, tmp_path):
        first = minimal_record()
        second = minimal_record(duration_s=2.0)
        append_record(first, tmp_path)
        append_record(second, tmp_path)
        records = read_ledger(tmp_path)
        assert [r["duration_s"] for r in records] == [1.0, 2.0]

    def test_missing_ledger_is_empty_history(self, tmp_path):
        assert read_ledger(tmp_path / "nowhere") == []

    def test_env_var_overrides_default_dir(self, tmp_path, monkeypatch):
        from repro.obs.ledger import LEDGER_DIR_ENV

        monkeypatch.setenv(LEDGER_DIR_ENV, str(tmp_path / "env-ledger"))
        path = append_record(minimal_record())
        assert path == ledger_path()
        assert path.parent == tmp_path / "env-ledger"

    def test_corrupt_line_raises_with_line_number(self, tmp_path):
        append_record(minimal_record(), tmp_path)
        path = ledger_path(tmp_path)
        path.write_text(path.read_text() + "{not json\n")
        with pytest.raises(LedgerError, match=":2:"):
            read_ledger(tmp_path)

    def test_invalid_record_never_written(self, tmp_path):
        with pytest.raises(LedgerError):
            append_record({"schema": LEDGER_SCHEMA}, tmp_path)
        assert not ledger_path(tmp_path).exists()


class TestCliEmitters:
    """`experiment`, `profile` and `verify` all emit records that
    validate against the one published schema (`hotpath` is covered
    below; `render`/`compare`/`trends` must not emit)."""

    def run_cli(self, argv, tmp_path):
        from repro.cli import main

        ledger = tmp_path / "ledger"
        assert main(argv + ["--ledger", str(ledger)]) == 0
        return read_ledger(ledger)

    def test_profile_emits_one_valid_record(self, tmp_path, capsys):
        records = self.run_cli(
            ["profile", "wolf-640x480", "--frames", "1", "--scale", "0.0625",
             "--trace", str(tmp_path / "t.json"),
             "--metrics", str(tmp_path / "m.jsonl")],
            tmp_path,
        )
        assert len(records) == 1
        record = records[0]
        assert record["kind"] == "profile"
        assert record["exit_status"] == 0
        assert record["command"].startswith("repro profile")
        assert record["metrics"]["counter.session.capture_frames"] == 1.0
        assert record["quality"]["mssim"]["count"] == 1
        assert "stage_ms.session.evaluate" in record["metrics"]

    def test_experiment_emits_record_with_store_stats(self, tmp_path):
        records = self.run_cli(
            ["experiment", "fig19", "--workloads", "wolf-640x480",
             "--frames", "1", "--scale", "0.0625",
             "--capture-cache", str(tmp_path / "store")],
            tmp_path,
        )
        assert len(records) == 1
        record = records[0]
        assert record["kind"] == "experiment"
        assert record["config"]["id"] == "fig19"
        assert record["store"]["writes"] >= 1
        assert record["metrics"]["store.writes"] >= 1.0

    def test_verify_emits_record(self, tmp_path):
        records = self.run_cli(
            ["verify", "--quick", "--only", "patu_decisions",
             "--report", str(tmp_path / "r.json")],
            tmp_path,
        )
        assert len(records) == 1
        assert records[0]["kind"] == "verify"

    def test_no_ledger_suppresses_the_record(self, tmp_path):
        from repro.cli import main

        ledger = tmp_path / "ledger"
        rc = main([
            "profile", "wolf-640x480", "--frames", "1", "--scale", "0.0625",
            "--trace", str(tmp_path / "t.json"),
            "--metrics", str(tmp_path / "m.jsonl"),
            "--ledger", str(ledger), "--no-ledger",
        ])
        assert rc == 0
        assert read_ledger(ledger) == []

    def test_output_paths_do_not_change_the_digest(self, tmp_path):
        a = self.run_cli(
            ["profile", "wolf-640x480", "--frames", "1", "--scale", "0.0625",
             "--trace", str(tmp_path / "a.json"),
             "--metrics", str(tmp_path / "a.jsonl")],
            tmp_path,
        )
        b = self.run_cli(
            ["profile", "wolf-640x480", "--frames", "1", "--scale", "0.0625",
             "--trace", str(tmp_path / "b.json"),
             "--metrics", str(tmp_path / "b.jsonl"),
             "--verbose"],
            tmp_path,
        )
        assert b[-1]["config_digest"] == a[0]["config_digest"]


def load_hotpath_module():
    root = pathlib.Path(__file__).resolve().parents[2]
    spec = importlib.util.spec_from_file_location(
        "hotpath_bench", root / "benchmarks" / "hotpath.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.slow
def test_hotpath_bench_emits_valid_record(tmp_path, capsys):
    hotpath = load_hotpath_module()
    ledger = tmp_path / "ledger"
    rc = hotpath.main([
        "--quick", "--fragments", "512", "--repeats", "1",
        "--texture-size", "64",
        "--out", str(tmp_path / "hp.json"), "--ledger", str(ledger),
    ])
    assert rc == 0
    records = read_ledger(ledger)
    assert len(records) == 1
    record = records[0]
    assert record["kind"] == "hotpath"
    assert record["metrics"]["stage_ms.texture.filter_batch"] > 0
    assert record["machine"]["calibration_ms"] > 0
    assert record["config"]["fragments"] == 512
