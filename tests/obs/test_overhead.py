"""The disabled-telemetry overhead guard.

The tentpole's contract is "near-zero overhead when disabled": every
instrumentation site costs one attribute load and one branch (or a
shared no-op context manager). This benchmark-style regression test
renders one small frame with the global registry disabled and compares
against the same render with every module's ``TELEMETRY`` binding
replaced by a hard stub (the "obs imports stubbed out" build). The
disabled path must stay within 5% — plus a small absolute slack so CI
timer jitter on a ~100 ms workload cannot flake the suite.
"""

from __future__ import annotations

import time

from repro.core.scenarios import SCENARIOS
from repro.obs import NOOP_SPAN, TELEMETRY

#: Every module that binds the global registry at import time.
_INSTRUMENTED_MODULES = (
    "repro.renderer.session",
    "repro.renderer.pipeline",
    "repro.texture.unit",
    "repro.core.patu",
    "repro.core.predictor",
    "repro.memsys.hierarchy",
    "repro.experiments.runner",
)


class _StubTelemetry:
    """What the code would see if the obs subsystem did not exist."""

    enabled = False
    progress_sink = None

    def span(self, _name, **_args):
        return NOOP_SPAN

    def count(self, _name, _amount=1):
        return None

    def gauge(self, _name, _value):
        return None

    def observe(self, _name, _value):
        return None

    def progress(self, _message):
        return None

    def frame_record(self, _fields=None, **_extra):
        return None


def _render_once(session, workload) -> float:
    start = time.perf_counter()
    capture = session.capture_frame(workload, 0)
    session.evaluate(capture, SCENARIOS["patu"], 0.4)
    return time.perf_counter() - start


def test_disabled_overhead_within_five_percent(
    session, mini_workload, monkeypatch
):
    assert not TELEMETRY.enabled

    import importlib

    rounds = 4
    disabled = []
    stubbed = []
    stub = _StubTelemetry()
    # Interleave the two builds so clock drift / cache warmup hits both
    # equally; min-of-N discards scheduler noise.
    for _ in range(rounds):
        with monkeypatch.context() as patch:
            for module_name in _INSTRUMENTED_MODULES:
                module = importlib.import_module(module_name)
                patch.setattr(module, "TELEMETRY", stub)
            stubbed.append(_render_once(session, mini_workload))
        disabled.append(_render_once(session, mini_workload))

    best_disabled = min(disabled)
    best_stubbed = min(stubbed)
    assert best_disabled <= best_stubbed * 1.05 + 0.005, (
        f"disabled telemetry cost {best_disabled * 1000:.1f} ms vs "
        f"{best_stubbed * 1000:.1f} ms stubbed — overhead above 5%"
    )
