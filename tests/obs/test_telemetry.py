"""Unit tests for the telemetry registry itself."""

from __future__ import annotations

import time

import pytest

from repro.errors import ReproError
from repro.obs import NOOP_SPAN, Telemetry
from repro.obs.metrics import Histogram, MetricRegistry, validate_metric_name


@pytest.fixture()
def tele() -> Telemetry:
    registry = Telemetry()
    registry.enabled = True
    return registry


class TestSpans:
    def test_nesting_tracks_depth_and_self_time(self, tele):
        with tele.span("outer.work"):
            time.sleep(0.005)
            with tele.span("inner.work"):
                time.sleep(0.005)
        spans = {s.name: s for s in tele.spans}
        outer, inner = spans["outer.work"], spans["inner.work"]
        assert outer.depth == 0
        assert inner.depth == 1
        assert inner.dur_us <= outer.dur_us
        # Self time is cumulative minus child time, exactly.
        assert outer.self_us == pytest.approx(outer.dur_us - inner.dur_us)
        assert inner.self_us == pytest.approx(inner.dur_us)

    def test_sibling_children_all_subtracted(self, tele):
        with tele.span("p.total"):
            with tele.span("c.one"):
                time.sleep(0.002)
            with tele.span("c.two"):
                time.sleep(0.002)
        spans = {s.name: s for s in tele.spans}
        children = spans["c.one"].dur_us + spans["c.two"].dur_us
        assert spans["p.total"].self_us == pytest.approx(
            spans["p.total"].dur_us - children
        )

    def test_span_args_recorded(self, tele):
        with tele.span("stage.x", pixels=42):
            pass
        assert tele.spans[0].args == {"pixels": 42}

    def test_exception_inside_span_still_records(self, tele):
        with pytest.raises(ValueError):
            with tele.span("broken.stage"):
                raise ValueError("boom")
        assert [s.name for s in tele.spans] == ["broken.stage"]
        assert not tele._stack

    def test_timed_decorator(self, tele):
        @tele.timed("decorated.fn")
        def work():
            return 7

        assert work() == 7
        assert work() == 7
        summary = tele.stage_summary()
        assert summary["decorated.fn"]["count"] == 2


class TestDisabled:
    def test_disabled_records_nothing(self):
        registry = Telemetry()
        assert not registry.enabled  # off by default
        with registry.span("a.b", arg=1):
            registry.count("x.y", 5)
            registry.gauge("x.g", 1.0)
            registry.observe("x.h", 2.0)
        assert registry.frame_record({"k": "v"}) is None
        assert registry.spans == []
        assert registry.frame_records == []
        assert registry.metrics.counter_totals() == {}

    def test_disabled_span_is_shared_noop(self):
        registry = Telemetry()
        assert registry.span("a.b") is NOOP_SPAN
        assert registry.span("c.d") is NOOP_SPAN

    def test_timed_disabled_passthrough(self):
        registry = Telemetry()

        @registry.timed("x.fn")
        def work():
            return "ok"

        assert work() == "ok"
        assert registry.spans == []


class TestCountersAndFrames:
    def test_counters_aggregate_across_frames(self, tele):
        tele.count("tex.samples", 10)
        tele.frame_record(frame=0)
        tele.count("tex.samples", 5)
        tele.count("tex.other", 2)
        tele.frame_record(frame=1)
        assert tele.counter_value("tex.samples") == 15
        rec0, rec1 = tele.frame_records
        assert rec0["counters"]["tex.samples"] == 10
        assert rec1["counters"]["tex.samples"] == 5
        assert rec1["counters"]["tex.other"] == 2

    def test_frame_record_stage_window(self, tele):
        with tele.span("s.one"):
            pass
        tele.frame_record(frame=0)
        with tele.span("s.two"):
            pass
        tele.frame_record(frame=1)
        rec0, rec1 = tele.frame_records
        assert "s.one" in rec0["stages"] and "s.two" not in rec0["stages"]
        assert "s.two" in rec1["stages"] and "s.one" not in rec1["stages"]
        assert rec1["stages"]["s.two"]["count"] == 1
        assert rec1["ts_us"] >= rec0["ts_us"]

    def test_frame_record_merges_fields(self, tele):
        rec = tele.frame_record({"mssim": 0.9}, workload="w")
        assert rec["mssim"] == 0.9
        assert rec["workload"] == "w"

    def test_counter_cannot_decrease(self, tele):
        tele.count("a.b", 1)
        with pytest.raises(ReproError):
            tele.count("a.b", -1)

    def test_gauge_and_histogram(self, tele):
        tele.gauge("g.val", 3.5)
        for v in (1.0, 2.0, 6.0):
            tele.observe("h.val", v)
        summary = tele.metrics.summary()
        assert summary["gauges"]["g.val"] == 3.5
        assert summary["histograms"]["h.val"]["count"] == 3
        assert summary["histograms"]["h.val"]["min"] == 1.0
        assert summary["histograms"]["h.val"]["max"] == 6.0
        assert summary["histograms"]["h.val"]["mean"] == pytest.approx(3.0)

    def test_reset_clears_everything(self, tele):
        with tele.span("a.b"):
            tele.count("c.d")
        tele.frame_record()
        tele.reset()
        assert tele.spans == []
        assert tele.frame_records == []
        assert tele.metrics.counter_totals() == {}
        assert tele.enabled  # reset keeps the enabled flag


class TestRemoteMerge:
    def make_worker(self, worker_id, *, ms, samples):
        """A fake pool worker: spans + counters, pid-tagged snapshot."""
        remote = Telemetry()
        remote.enabled = True
        with remote.span("job.evaluate"):
            time.sleep(ms / 1000.0)
        remote.count("texture.trilinear_samples", samples)
        snapshot = remote.snapshot_remote()
        snapshot["worker"] = worker_id  # pretend it's another process
        return snapshot

    def test_snapshot_is_pid_tagged(self, tele):
        import os

        with tele.span("a.b"):
            pass
        snapshot = tele.snapshot_remote()
        assert snapshot["worker"] == os.getpid()
        assert "a.b" in snapshot["stages"]

    def test_round_trip_preserves_totals_and_attribution(self, tele):
        snap_a = self.make_worker(101, ms=2, samples=10)
        snap_b = self.make_worker(202, ms=2, samples=32)
        tele.count("texture.trilinear_samples", 5)  # local work too
        tele.merge_remote(snap_a)
        tele.merge_remote(snap_b)

        # Merged totals include local + both workers.
        assert tele.counter_value("texture.trilinear_samples") == 47
        summary = tele.stage_summary()
        assert summary["job.evaluate"]["count"] == 2
        expected_us = (snap_a["stages"]["job.evaluate"]["total_us"]
                       + snap_b["stages"]["job.evaluate"]["total_us"])
        assert summary["job.evaluate"]["total_us"] == pytest.approx(expected_us)

        # The per-worker dimension partitions the *remote* share exactly.
        workers = tele.worker_summary()
        assert set(workers) == {"101", "202"}
        assert workers["101"]["counters"]["texture.trilinear_samples"] == 10
        assert workers["202"]["counters"]["texture.trilinear_samples"] == 32
        per_worker_us = sum(
            w["stages"]["job.evaluate"]["total_us"] for w in workers.values()
        )
        assert per_worker_us == pytest.approx(expected_us)

    def test_repeated_snapshots_from_one_worker_accumulate(self, tele):
        tele.merge_remote(self.make_worker(7, ms=1, samples=4))
        tele.merge_remote(self.make_worker(7, ms=1, samples=6))
        workers = tele.worker_summary()
        assert set(workers) == {"7"}
        assert workers["7"]["counters"]["texture.trilinear_samples"] == 10
        assert workers["7"]["stages"]["job.evaluate"]["count"] == 2
        assert workers["7"]["busy_us"] > 0

    def test_merge_tags_synthetic_spans_with_worker(self, tele):
        tele.merge_remote(self.make_worker(9, ms=1, samples=1))
        (span,) = tele.spans
        assert span.args == {"remote_calls": 1, "worker": 9}

    def test_format_worker_summary_reports_skew(self, tele):
        tele.merge_remote(self.make_worker(1, ms=1, samples=1))
        tele.merge_remote(self.make_worker(2, ms=4, samples=1))
        text = tele.format_worker_summary()
        assert "worker 1:" in text and "worker 2:" in text
        assert "2 worker(s), skew" in text
        assert "of busiest" in text

    def test_serial_runs_have_no_worker_dimension(self, tele):
        with tele.span("a.b"):
            pass
        assert tele.worker_summary() == {}
        assert tele.format_worker_summary() == ""

    def test_merge_is_noop_when_disabled_or_empty(self):
        registry = Telemetry()
        registry.merge_remote({"worker": 1, "counters": {"a.b": 5}})
        assert registry.counter_value("a.b") == 0  # disabled
        registry.enabled = True
        registry.merge_remote(None)
        registry.merge_remote({})
        assert registry.worker_summary() == {}


class TestObserveMany:
    def test_batch_matches_scalar_observes(self, tele):
        import numpy as np

        tele.observe_many("q.batch", np.array([1.0, 2.0, 6.0]))
        for v in (1.0, 2.0, 6.0):
            tele.observe("q.scalar", v)
        hists = tele.metrics.summary()["histograms"]
        assert hists["q.batch"] == hists["q.scalar"]

    def test_empty_batch_is_a_noop(self, tele):
        import numpy as np

        tele.observe_many("q.empty", np.array([]))
        hist = tele.metrics.histogram("q.empty")
        assert hist.summary()["count"] == 0


class TestMetricNaming:
    def test_names_require_subsystem_dot_noun(self):
        registry = MetricRegistry()
        with pytest.raises(ReproError):
            registry.counter("nodots")
        with pytest.raises(ReproError):
            registry.gauge(".")
        assert validate_metric_name("memsys.l1_miss") == "memsys.l1_miss"

    def test_empty_histogram_summary(self):
        h = Histogram("x.y")
        assert h.summary() == {
            "count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0,
        }


class TestProgress:
    def test_progress_respects_sink_even_when_disabled(self):
        registry = Telemetry()
        seen = []
        registry.progress_sink = seen.append
        registry.progress("hello")
        assert seen == ["hello"]
        registry.progress_sink = None
        registry.progress("dropped")
        assert seen == ["hello"]

    def test_format_summary_renders(self, tele):
        with tele.span("a.stage"):
            tele.count("a.counter", 3)
        text = tele.format_summary()
        assert "a.stage" in text
        assert "a.counter" in text
