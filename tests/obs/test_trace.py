"""Chrome trace export and JSONL sink round-trips."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.errors import SchemaError
from repro.obs import (
    Telemetry,
    jsonable,
    read_metrics_jsonl,
    trace_events,
    write_chrome_trace,
    write_metrics_jsonl,
)
from repro.obs.jsonl import METRICS_SCHEMA, check_schema
from repro.obs.trace import TRACE_SCHEMA, read_chrome_trace


@pytest.fixture()
def tele() -> Telemetry:
    registry = Telemetry()
    registry.enabled = True
    with registry.span("frame.render", frame=0):
        with registry.span("texture.filter"):
            registry.count("texture.samples", 128)
    registry.frame_record({"mssim": 0.97})
    return registry


class TestChromeTrace:
    def test_round_trips_through_json(self, tele, tmp_path):
        path = write_chrome_trace(tele, tmp_path / "trace.json")
        document = json.loads(path.read_text())
        assert isinstance(document["traceEvents"], list)
        assert document["displayTimeUnit"] == "ms"

    def test_complete_events_have_valid_fields(self, tele, tmp_path):
        document = json.loads(
            write_chrome_trace(tele, tmp_path / "t.json").read_text()
        )
        events = document["traceEvents"]
        assert all("ph" in e for e in events)
        x_events = [e for e in events if e["ph"] == "X"]
        assert {e["name"] for e in x_events} == {"frame.render", "texture.filter"}
        for event in x_events:
            assert isinstance(event["ts"], (int, float)) and event["ts"] >= 0
            assert isinstance(event["dur"], (int, float)) and event["dur"] >= 0
            assert event["pid"] == 1 and event["tid"] == 1
            assert event["cat"] == event["name"].split(".")[0]

    def test_nested_span_contained_in_parent(self, tele):
        events = {e["name"]: e for e in trace_events(tele) if e["ph"] == "X"}
        outer, inner = events["frame.render"], events["texture.filter"]
        assert outer["ts"] <= inner["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"] + 1e-3

    def test_counter_events_emitted_per_frame(self, tele):
        c_events = [e for e in trace_events(tele) if e["ph"] == "C"]
        assert any(e["name"] == "texture.samples" for e in c_events)
        assert c_events[0]["args"]["value"] == 128

    def test_span_args_survive(self, tele):
        frame = next(
            e for e in trace_events(tele)
            if e["ph"] == "X" and e["name"] == "frame.render"
        )
        assert frame["args"] == {"frame": 0}


class TestMetricsJsonl:
    def test_write_and_read_round_trip(self, tele, tmp_path):
        path = write_metrics_jsonl(tele.frame_records, tmp_path / "m.jsonl")
        records = read_metrics_jsonl(path)
        assert len(records) == 1
        assert records[0]["mssim"] == 0.97
        assert records[0]["counters"]["texture.samples"] == 128
        assert "frame.render" in records[0]["stages"]

    def test_numpy_values_serialize(self, tmp_path):
        records = [{
            "i": np.int64(3),
            "f": np.float32(0.5),
            "b": np.bool_(True),
            "arr": np.arange(3),
            "nested": {"x": np.int32(7)},
        }]
        path = write_metrics_jsonl(records, tmp_path / "np.jsonl")
        back = read_metrics_jsonl(path)[0]
        assert back == {
            "schema": 1,
            "i": 3, "f": 0.5, "b": True, "arr": [0, 1, 2], "nested": {"x": 7},
        }

    def test_jsonable_passthrough(self):
        assert jsonable({"a": (1, 2), "b": "s"}) == {"a": [1, 2], "b": "s"}

    def test_empty_records(self, tmp_path):
        path = write_metrics_jsonl([], tmp_path / "empty.jsonl")
        assert read_metrics_jsonl(path) == []


class TestSchemaStamps:
    def test_every_jsonl_record_is_stamped(self, tele, tmp_path):
        path = write_metrics_jsonl(tele.frame_records, tmp_path / "m.jsonl")
        for line in path.read_text().splitlines():
            assert json.loads(line)["schema"] == METRICS_SCHEMA

    def test_jsonl_reader_rejects_unknown_major(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text(json.dumps({"schema": METRICS_SCHEMA + 1}) + "\n")
        with pytest.raises(SchemaError, match="unsupported schema major"):
            read_metrics_jsonl(path)

    def test_jsonl_reader_rejects_malformed_major(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"schema": "one"}) + "\n")
        with pytest.raises(SchemaError, match="malformed"):
            read_metrics_jsonl(path)

    def test_missing_field_reads_as_major_one(self, tmp_path):
        path = tmp_path / "legacy.jsonl"
        path.write_text(json.dumps({"mssim": 0.9}) + "\n")
        assert read_metrics_jsonl(path)[0]["mssim"] == 0.9
        assert check_schema({}, expected=1, what="x") == {}

    def test_trace_metadata_is_stamped(self, tele, tmp_path):
        path = write_chrome_trace(tele, tmp_path / "t.json")
        document = read_chrome_trace(path)
        assert document["otherData"]["schema"] == TRACE_SCHEMA
        assert "metrics" in document["otherData"]

    def test_trace_reader_rejects_unknown_major(self, tele, tmp_path):
        path = write_chrome_trace(tele, tmp_path / "t.json")
        document = json.loads(path.read_text())
        document["otherData"]["schema"] = TRACE_SCHEMA + 1
        path.write_text(json.dumps(document))
        with pytest.raises(SchemaError, match="unsupported schema major"):
            read_chrome_trace(path)

    def test_pre_versioning_trace_loads(self, tele, tmp_path):
        path = write_chrome_trace(tele, tmp_path / "t.json")
        document = json.loads(path.read_text())
        del document["otherData"]["schema"]
        path.write_text(json.dumps(document))
        assert read_chrome_trace(path)["displayTimeUnit"] == "ms"
