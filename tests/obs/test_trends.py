"""Trend-analysis tests: band math, directions, calibration scaling."""

from __future__ import annotations

import pytest

from repro.obs.trends import (
    DIRECTION_BOTH,
    DIRECTION_HIGH_BAD,
    DIRECTION_LOW_BAD,
    MAD_SIGMA,
    analyze_ledger,
    analyze_records,
    is_noisy_metric,
    is_time_metric,
    metric_direction,
    time_abs_floor,
)


def record(metrics, *, kind="profile", digest="feedc0de00000000",
           calibration_ms=10.0, command="repro profile hl2"):
    """A synthetic ledger record: just the keys analyze_records uses."""
    return {
        "kind": kind,
        "config_digest": digest,
        "command": command,
        "machine": {"calibration_ms": calibration_ms},
        "metrics": dict(metrics),
    }


class TestMetricClassification:
    @pytest.mark.parametrize("name", [
        "stage_ms.session.evaluate", "duration_s", "profile_ms", "wait_us",
    ])
    def test_time_metrics(self, name):
        assert is_time_metric(name)
        assert metric_direction(name) == DIRECTION_HIGH_BAD

    def test_cycles_are_high_bad_but_not_time(self):
        assert not is_time_metric("quality.frame_cycles_mean")
        assert metric_direction("quality.frame_cycles_mean") == DIRECTION_HIGH_BAD

    @pytest.mark.parametrize("name", [
        "quality.mssim_mean", "replay.fps", "store.hits",
    ])
    def test_quality_metrics_are_low_bad(self, name):
        assert metric_direction(name) == DIRECTION_LOW_BAD

    @pytest.mark.parametrize("name", [
        "counter.texture.fragments", "store.writes", "exit_status",
    ])
    def test_deterministic_metrics_are_two_sided(self, name):
        assert metric_direction(name) == DIRECTION_BOTH

    @pytest.mark.parametrize("name", [
        "requests_per_sec", "coalesce_rate", "store_hit_rate",
    ])
    def test_service_throughput_metrics_are_low_bad(self, name):
        assert metric_direction(name) == DIRECTION_LOW_BAD

    @pytest.mark.parametrize("name", [
        "peak_queue_depth", "rejected",
        "counter.resilience.admission_rejections",
    ])
    def test_service_backpressure_metrics_are_high_bad(self, name):
        assert metric_direction(name) == DIRECTION_HIGH_BAD

    @pytest.mark.parametrize("name", [
        "requests_per_sec", "sequential_rps", "speedup_vs_sequential",
        "coalesced_batches", "batch_size_mean", "peak_queue_depth",
    ])
    def test_scheduling_noisy_metrics(self, name):
        assert is_noisy_metric(name)
        assert not is_noisy_metric("counter.texture.fragments")

    def test_noisy_metrics_ungated_until_three_samples(self):
        # two runs (one historical sample): a 40% throughput drop is
        # reported but never flagged — scheduling noise, not evidence
        records = [
            record({"requests_per_sec": 2000.0}, kind="serve"),
            record({"requests_per_sec": 1200.0}, kind="serve"),
        ]
        report = analyze_records(records, kind="serve")
        [group] = report.groups
        [metric] = group.metrics
        assert metric.direction == DIRECTION_LOW_BAD
        assert not metric.flagged
        # with three historical samples the gate arms
        armed = analyze_records(
            [record({"requests_per_sec": 2000.0}, kind="serve")] * 4
            + [record({"requests_per_sec": 1200.0}, kind="serve")],
            kind="serve",
        )
        [group] = armed.groups
        assert group.metrics[0].flagged

    def test_abs_floor_is_half_a_millisecond_in_each_unit(self):
        assert time_abs_floor("stage_ms.evaluate") == 0.5
        assert time_abs_floor("wait_us") == 500.0
        assert time_abs_floor("duration_s") == 0.0005
        assert time_abs_floor("counter.x") == 0.0


class TestBandMath:
    def test_single_run_groups_are_skipped(self):
        report = analyze_records([record({"counter.x": 1.0})])
        assert report.groups == []
        assert report.skipped_single == 1
        assert "single run" in report.format()

    def test_identical_runs_never_flag(self):
        metrics = {"counter.x": 100.0, "stage_ms.a": 3.0,
                   "quality.mssim_mean": 0.97}
        report = analyze_records([record(metrics), record(metrics)])
        assert report.regressions == []
        assert report.format().endswith("ok: no metric left its trend band\n")

    def test_two_sided_metric_flags_any_drift(self):
        base = [record({"counter.x": 1000.0}) for _ in range(3)]
        up = analyze_records(base + [record({"counter.x": 1020.0})])
        down = analyze_records(base + [record({"counter.x": 980.0})])
        assert [m.name for _, m in up.regressions] == ["counter.x"]
        assert [m.name for _, m in down.regressions] == ["counter.x"]
        # within the 1% exact floor: fine
        ok = analyze_records(base + [record({"counter.x": 1005.0})])
        assert ok.regressions == []

    def test_time_metric_only_flags_upward(self):
        base = [record({"stage_ms.a": 100.0}) for _ in range(3)]
        slow = analyze_records(base + [record({"stage_ms.a": 150.0})])
        fast = analyze_records(base + [record({"stage_ms.a": 50.0})])
        assert len(slow.regressions) == 1
        assert fast.regressions == []  # a speedup is not a regression

    def test_quality_metric_only_flags_downward(self):
        base = [record({"quality.mssim_mean": 0.95}) for _ in range(3)]
        worse = analyze_records(base + [record({"quality.mssim_mean": 0.80})])
        better = analyze_records(base + [record({"quality.mssim_mean": 0.99})])
        assert len(worse.regressions) == 1
        assert better.regressions == []

    def test_mad_band_adapts_to_noisy_history(self):
        # Noisy history: values 90..110 — MAD-based band must absorb a
        # 115 that a tight relative floor would flag.
        history = [record({"stage_ms.a": v})
                   for v in (90.0, 95.0, 100.0, 105.0, 110.0)]
        report = analyze_records(history + [record({"stage_ms.a": 115.0})])
        (trend,) = report.groups[0].metrics
        assert trend.mad == 5.0
        assert trend.threshold >= 4.0 * MAD_SIGMA * 5.0
        assert not trend.flagged

    def test_sub_millisecond_jitter_is_absorbed(self):
        # +47% on a 0.06 ms stage is timer jitter, not a regression.
        report = analyze_records([
            record({"stage_ms.reconstruct": 0.061}),
            record({"stage_ms.reconstruct": 0.089}),
        ])
        (trend,) = report.groups[0].metrics
        assert trend.threshold >= 0.5
        assert not trend.flagged

    def test_small_history_never_flags_wall_clock(self):
        # One or two historical samples say nothing about machine
        # noise: even a 3x wall-clock blip is reported, not flagged...
        for history in (1, 2):
            rows = [record({"stage_ms.a": 10.0}) for _ in range(history)]
            report = analyze_records(rows + [record({"stage_ms.a": 30.0})])
            (trend,) = report.groups[0].metrics
            assert not trend.flagged
        # ...three samples arm the gate...
        rows = [record({"stage_ms.a": 10.0}) for _ in range(3)]
        report = analyze_records(rows + [record({"stage_ms.a": 30.0})])
        assert len(report.regressions) == 1
        # ...and deterministic counters gate from the first comparison.
        report = analyze_records([
            record({"counter.x": 1000.0}),
            record({"counter.x": 1600.0}),
        ])
        assert len(report.regressions) == 1

    def test_calibration_scales_historical_time_metrics(self):
        # History on a 2x-faster machine (calibration 5 ms vs 10 ms):
        # its 50 ms span is re-expressed as 100 ms on this machine, so
        # a 100 ms latest run is NOT a regression...
        fast_history = [record({"stage_ms.a": 50.0}, calibration_ms=5.0)
                        for _ in range(3)]
        latest = record({"stage_ms.a": 100.0}, calibration_ms=10.0)
        report = analyze_records(fast_history + [latest])
        (trend,) = report.groups[0].metrics
        assert trend.median == pytest.approx(100.0)
        assert not trend.flagged
        # ...while counters are never rescaled.
        counts = [record({"counter.x": 50.0}, calibration_ms=5.0)
                  for _ in range(3)]
        report = analyze_records(
            counts + [record({"counter.x": 100.0}, calibration_ms=10.0)]
        )
        assert len(report.regressions) == 1


class TestGroupingAndFilters:
    def test_different_digests_never_compare(self):
        a = record({"counter.x": 10.0}, digest="aaaaaaaaaaaaaaaa")
        b = record({"counter.x": 99999.0}, digest="bbbbbbbbbbbbbbbb")
        report = analyze_records([a, b])
        assert report.groups == []
        assert report.skipped_single == 2

    def test_different_kinds_never_compare(self):
        a = record({"counter.x": 10.0}, kind="profile")
        b = record({"counter.x": 99999.0}, kind="verify")
        assert analyze_records([a, b]).skipped_single == 2

    def test_kind_and_metric_filters(self):
        rows = [record({"counter.x": 10.0, "counter.y": 5.0})
                for _ in range(2)]
        rows += [record({"counter.x": 10.0}, kind="verify") for _ in range(2)]
        report = analyze_records(rows, kind="profile")
        assert [g.kind for g in report.groups] == ["profile"]
        report = analyze_records(rows, metric_filter="counter.y")
        names = [m.name for g in report.groups for m in g.metrics]
        assert names == ["counter.y"]

    def test_window_bounds_the_history(self):
        # 10 old runs at 1000, then 3 recent at 2000: with window=2 the
        # baseline only sees the recent level, so 2000 is not flagged.
        rows = [record({"counter.x": 1000.0}) for _ in range(10)]
        rows += [record({"counter.x": 2000.0}) for _ in range(3)]
        assert analyze_records(rows, window=2).regressions == []
        assert len(analyze_records(rows, window=12).regressions) == 1

    def test_new_metrics_without_history_are_skipped(self):
        rows = [record({"counter.x": 10.0}),
                record({"counter.x": 10.0, "counter.new": 5.0})]
        names = [m.name
                 for g in analyze_records(rows).groups for m in g.metrics]
        assert names == ["counter.x"]


class TestLedgerEntryPoint:
    def test_analyze_ledger_reads_the_directory(self, tmp_path):
        from repro.obs import append_record, build_record

        for _ in range(2):
            append_record(
                build_record("profile", config={"frames": 1},
                             calibration_ms=1.0,
                             metrics={"counter.x": 5.0}),
                tmp_path,
            )
        report = analyze_ledger(tmp_path)
        assert report.groups and not report.regressions

    def test_empty_ledger_formats_gracefully(self, tmp_path):
        report = analyze_ledger(tmp_path / "empty")
        assert "empty ledger" in report.format()


class TestForeignCalibration:
    """Records whose machine token is missing are *uncomparable* for
    wall-clock metrics: scaling by an unknown ratio would gate against
    garbage. They must be skipped with a visible note — never crash,
    never silently compared raw."""

    def test_uncalibrated_history_is_skipped_with_note(self):
        # Foreign records (calibration 0) carry a wildly slower span; a
        # raw comparison would flag the calibrated latest run... or
        # worse, a wildly *faster* foreign history would silently gate.
        foreign = [record({"stage_ms.a": 1000.0, "counter.x": 7.0},
                          calibration_ms=0.0) for _ in range(3)]
        latest = record({"stage_ms.a": 5.0, "counter.x": 7.0},
                        calibration_ms=10.0)
        report = analyze_records(foreign + [latest])
        group = report.groups[0]
        names = [m.name for m in group.metrics]
        # The time metric has no comparable history; the counter (not
        # calibration-dependent) still compares.
        assert names == ["counter.x"]
        assert report.regressions == []
        assert any("uncalibrated" in note for note in group.notes)
        assert "uncalibrated" in report.format()

    def test_uncalibrated_latest_never_gates_time_metrics(self):
        history = [record({"stage_ms.a": 5.0}, calibration_ms=10.0)
                   for _ in range(3)]
        latest = record({"stage_ms.a": 1000.0}, calibration_ms=0.0)
        report = analyze_records(history + [latest])
        group = report.groups[0]
        assert group.metrics == []
        assert report.regressions == []
        assert any("uncalibrated" in note for note in group.notes)

    def test_both_sides_uncalibrated_still_compare_raw(self):
        # Same (unknown) machine on both sides: raw comparison is the
        # best available and stays armed.
        rows = [record({"stage_ms.a": 10.0}, calibration_ms=0.0)
                for _ in range(3)]
        report = analyze_records(rows + [record({"stage_ms.a": 100.0},
                                                calibration_ms=0.0)])
        assert len(report.regressions) == 1

    def test_non_dict_machine_field_does_not_crash(self):
        rows = [record({"counter.x": 5.0}) for _ in range(2)]
        rows[0]["machine"] = None
        rows[1]["machine"] = "mangled"
        report = analyze_records(rows)
        assert report.groups and report.regressions == []

    def test_mixed_history_uses_only_calibrated_samples(self):
        mixed = [record({"stage_ms.a": 1000.0}, calibration_ms=0.0)]
        mixed += [record({"stage_ms.a": 10.0}, calibration_ms=10.0)
                  for _ in range(3)]
        latest = record({"stage_ms.a": 10.0}, calibration_ms=10.0)
        report = analyze_records(mixed + [latest])
        (trend,) = report.groups[0].metrics
        assert trend.samples == 3
        assert trend.median == pytest.approx(10.0)
        assert not trend.flagged


class TestMultiLedger:
    def _fill(self, ledger_dir, value, *, n=1):
        from repro.obs import append_record, build_record

        for _ in range(n):
            append_record(
                build_record("fleet", config={"workload": "fuzz@0"},
                             calibration_ms=1.0,
                             metrics={"counter.x": value}),
                ledger_dir,
            )

    def test_read_ledgers_merges_directories(self, tmp_path):
        from repro.obs.ledger import read_ledgers

        self._fill(tmp_path / "a", 5.0, n=2)
        self._fill(tmp_path / "b", 5.0, n=1)
        records = read_ledgers([tmp_path / "a", tmp_path / "b"])
        assert len(records) == 3
        created = [r["created"] for r in records]
        assert created == sorted(created)
        assert read_ledgers([tmp_path / "a", tmp_path / "missing"]) \
            == read_ledgers([tmp_path / "a"])

    def test_analyze_ledger_accepts_a_directory_list(self, tmp_path):
        self._fill(tmp_path / "a", 5.0, n=2)
        self._fill(tmp_path / "b", 50.0, n=1)
        # Single dir: identical history, no regression.
        assert analyze_ledger(tmp_path / "a").regressions == []
        # Merged: the b-shard's drifted counter lands in the same
        # (kind, digest) group and is flagged.
        report = analyze_ledger([tmp_path / "a", tmp_path / "b"])
        (group,) = report.groups
        assert group.runs == 3
        assert len(report.regressions) == 1
