"""Tests for the energy, DRAM-power and area models."""

import pytest

from repro.config import GpuConfig
from repro.errors import PipelineError, ReproError
from repro.memsys.dram import DramStats
from repro.power.area import PatuAreaModel
from repro.power.components import EnergyParams
from repro.power.dram_power import DramPowerModel
from repro.power.energy import EnergyModel, FrameEvents


def _events(**overrides):
    base = dict(
        trilinear_samples=10_000,
        address_samples=10_000,
        l1_accesses=80_000,
        l2_accesses=8_000,
        dram_lines=1_000,
        shader_ops=100_000,
        vertices=500,
        hash_insertions=0,
        patu_checks=0,
    )
    base.update(overrides)
    return FrameEvents(**base)


class TestEnergyModel:
    def test_energy_is_linear_in_events(self):
        model = EnergyModel(GpuConfig())
        one = model.frame_energy(_events(dram_lines=1000), 100_000)
        two = model.frame_energy(_events(dram_lines=2000), 100_000)
        assert (two.dram_nj - one.dram_nj) == pytest.approx(
            1000 * model.params.dram_line_nj
        )

    def test_background_scales_with_time(self):
        model = EnergyModel(GpuConfig())
        short = model.frame_energy(_events(), 100_000)
        long = model.frame_energy(_events(), 200_000)
        assert long.background_nj == pytest.approx(2 * short.background_nj)
        assert long.dynamic_nj == pytest.approx(short.dynamic_nj)

    def test_patu_events_priced(self):
        model = EnergyModel(GpuConfig())
        without = model.frame_energy(_events(), 100_000)
        with_patu = model.frame_energy(
            _events(hash_insertions=5000, patu_checks=2000), 100_000
        )
        assert with_patu.patu_nj > without.patu_nj
        expected = (
            5000 * model.params.hash_insert_nj + 2000 * model.params.patu_check_nj
        )
        assert with_patu.patu_nj == pytest.approx(expected)

    def test_average_power(self):
        model = EnergyModel(GpuConfig())
        bd = model.frame_energy(_events(), 1_000_000)
        # 1e6 cycles at 1 GHz = 1 ms.
        watts = bd.average_power_w(1_000_000, 1e9)
        assert watts == pytest.approx(bd.total_nj * 1e-9 / 1e-3)

    def test_rejects_nonpositive_cycles(self):
        model = EnergyModel(GpuConfig())
        with pytest.raises(PipelineError):
            model.frame_energy(_events(), 0)

    def test_rejects_negative_events(self):
        with pytest.raises(PipelineError):
            _events(dram_lines=-1)


class TestDramPower:
    def test_row_hits_skip_activation_energy(self):
        model = DramPowerModel()
        friendly = model.frame_energy(
            DramStats(lines_fetched=1000, row_hits=1000), 0.001
        )
        hostile = model.frame_energy(
            DramStats(lines_fetched=1000, row_hits=0), 0.001
        )
        assert friendly.activate_nj == 0.0
        assert hostile.activate_nj > 0.0
        assert hostile.total_nj > friendly.total_nj

    def test_burst_energy_per_line(self):
        model = DramPowerModel()
        bd = model.frame_energy(DramStats(lines_fetched=10, row_hits=10), 1.0)
        assert bd.burst_nj == pytest.approx(10 * model.params.burst_nj)

    def test_rejects_nonpositive_time(self):
        with pytest.raises(PipelineError):
            DramPowerModel().frame_energy(DramStats(), 0.0)


class TestAreaModel:
    def test_paper_storage_per_unit(self):
        report = PatuAreaModel(GpuConfig()).report()
        # 4 tables x 16 entries x 260 bits ~= 2 KB (Section V-D).
        assert report.storage_kb_per_unit == pytest.approx(2.03, abs=0.01)

    def test_paper_area_per_cluster(self):
        report = PatuAreaModel(GpuConfig()).report()
        assert report.mm2_per_cluster == pytest.approx(0.15, abs=0.01)

    def test_overhead_is_small_fraction_of_gpu(self):
        report = PatuAreaModel(GpuConfig()).report()
        assert report.gpu_fraction < 0.01

    def test_area_scales_with_entries(self):
        small = PatuAreaModel(GpuConfig(), entries=8).report()
        large = PatuAreaModel(GpuConfig(), entries=16).report()
        assert large.sram_mm2_per_cluster == pytest.approx(
            2 * small.sram_mm2_per_cluster
        )

    def test_rejects_zero_entries(self):
        with pytest.raises(ReproError):
            PatuAreaModel(GpuConfig(), entries=0)


class TestEnergyParamsRatios:
    def test_event_cost_ordering_is_physical(self):
        p = EnergyParams()
        # DRAM >> L2 > L1 > filtering op > addressing > shader op.
        assert p.dram_line_nj > p.l2_access_nj > p.l1_access_nj
        assert p.trilinear_filter_nj > p.address_sample_nj > p.shader_op_nj
        assert p.hash_insert_nj < p.l1_access_nj  # PATU overhead is tiny
