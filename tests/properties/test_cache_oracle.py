"""Oracle test: CacheSim vs an independent reference LRU implementation.

The production simulator carries optimizations (consecutive-duplicate
collapsing, per-set move-to-front lists). The oracle below is written
for clarity, not speed — an OrderedDict per set — and hypothesis drives
both with the same random streams.
"""

from collections import OrderedDict

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.config import CacheConfig
from repro.memsys.cache import CacheSim


class OracleLru:
    """Textbook set-associative LRU cache."""

    def __init__(self, num_sets: int, ways: int) -> None:
        self.num_sets = num_sets
        self.ways = ways
        self.sets = [OrderedDict() for _ in range(num_sets)]

    def access(self, addr: int) -> bool:
        """Return True on hit."""
        target = self.sets[addr % self.num_sets]
        if addr in target:
            target.move_to_end(addr)
            return True
        if len(target) >= self.ways:
            target.popitem(last=False)
        target[addr] = True
        return False


@st.composite
def _stream(draw):
    length = draw(st.integers(min_value=0, max_value=200))
    # A small address universe forces conflict and capacity behaviour.
    return [draw(st.integers(min_value=0, max_value=40)) for _ in range(length)]


class TestOracleAgreement:
    @settings(max_examples=60, deadline=None)
    @given(_stream(), st.sampled_from([(1, 1), (2, 2), (4, 2), (4, 4)]))
    def test_hit_counts_match(self, stream, geometry):
        sets, ways = geometry
        sim = CacheSim(CacheConfig(size_bytes=sets * ways * 64, ways=ways))
        oracle = OracleLru(sets, ways)

        arr = np.asarray(stream, dtype=np.int64)
        misses = sim.access(arr)
        oracle_hits = sum(oracle.access(a) for a in stream)

        assert sim.stats.accesses == len(stream)
        assert sim.stats.hits == oracle_hits
        assert len(misses) == len(stream) - oracle_hits

    @settings(max_examples=30, deadline=None)
    @given(_stream())
    def test_chunked_access_equals_single_call(self, stream):
        """Feeding the stream in pieces must not change behaviour."""
        config = CacheConfig(size_bytes=4 * 2 * 64, ways=2)
        whole = CacheSim(config)
        chunked = CacheSim(config)
        arr = np.asarray(stream, dtype=np.int64)
        whole_misses = whole.access(arr)

        pieces = []
        for start in range(0, len(arr), 7):
            pieces.append(chunked.access(arr[start : start + 7]))
        chunked_misses = (
            np.concatenate(pieces) if pieces else np.empty(0, dtype=np.int64)
        )
        assert whole.stats.hits == chunked.stats.hits
        assert np.array_equal(whole_misses, chunked_misses)
