"""Cross-module property-based tests on the system's core invariants.

These complement the per-module hypothesis tests with properties that
span subsystem boundaries — the relationships the experiments rely on.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.af_ssim import af_ssim_n, af_ssim_txds
from repro.core.patu import FilterMode, PerceptionAwareTextureUnit
from repro.core.scenarios import AFSSIM_N_TXDS, BASELINE, PATU
from repro.texture.addressing import TextureLayout
from repro.texture.image import Texture2D
from repro.texture.mipmap import MipChain
from repro.texture.unit import TEXELS_PER_TRILINEAR, TextureUnit

_TEX = 64

_settings = settings(
    max_examples=25, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@pytest.fixture(scope="module")
def unit():
    rng = np.random.default_rng(99)
    chain = MipChain(Texture2D("p", rng.random((_TEX, _TEX, 4))))
    return TextureUnit(TextureLayout([chain]))


_frag_strategy = st.tuples(
    st.floats(min_value=0.0, max_value=1.0),  # u
    st.floats(min_value=0.0, max_value=1.0),  # v
    st.floats(min_value=0.2, max_value=40.0),  # px (texels)
    st.floats(min_value=0.2, max_value=40.0),  # py (texels)
)


class TestFilteringInvariants:
    @_settings
    @given(st.lists(_frag_strategy, min_size=1, max_size=12))
    def test_batch_accounting_always_consistent(self, unit, frags):
        arr = np.asarray(frags, dtype=np.float64)
        u, v, px, py = arr.T
        batch = unit.filter_batch(
            0, u, v, px / _TEX, np.zeros_like(u), np.zeros_like(u), py / _TEX
        )
        # Structural invariants of every capture batch.
        assert (batch.n >= 1).all() and (batch.n <= 16).all()
        assert np.array_equal(np.diff(batch.sample_row_ptr), batch.n)
        assert batch.af_lines.size == batch.total_af_samples * TEXELS_PER_TRILINEAR
        assert (batch.lod_af <= batch.lod_tf + 1e-9).all()
        # Colors are convex combinations of texels: inside [0, 1].
        for colors in (batch.af_color, batch.tf_color, batch.tf_af_lod_color):
            assert colors.min() >= -1e-5 and colors.max() <= 1 + 1e-5

    @_settings
    @given(st.lists(_frag_strategy, min_size=1, max_size=12))
    def test_af_color_bounded_by_constituent_extremes(self, unit, frags):
        # AF is a mean of trilinear samples, each of which is a convex
        # combination: AF output can never exceed the TF dynamic range
        # of the whole texture.
        arr = np.asarray(frags, dtype=np.float64)
        u, v, px, py = arr.T
        batch = unit.filter_batch(
            0, u, v, px / _TEX, np.zeros_like(u), np.zeros_like(u), py / _TEX
        )
        chain = unit.layout.chains[0]
        lo = min(level.min() for level in chain.levels)
        hi = max(level.max() for level in chain.levels)
        assert batch.af_color.min() >= lo - 1e-5
        assert batch.af_color.max() <= hi + 1e-5


class TestDecisionInvariants:
    @_settings
    @given(
        st.lists(st.integers(min_value=1, max_value=16), min_size=1, max_size=48),
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_patu_between_baseline_and_af_off(self, ns, txds_value, threshold):
        n = np.asarray(ns)
        txds = np.full(len(ns), txds_value)
        base = PerceptionAwareTextureUnit(BASELINE, 1.0).decide(n, txds)
        patu = PerceptionAwareTextureUnit(PATU, threshold).decide(n, txds)
        off = PerceptionAwareTextureUnit(AFSSIM_N_TXDS, 0.0).decide(n, txds)
        assert off.total_trilinear <= patu.total_trilinear <= base.total_trilinear

    @_settings
    @given(
        st.integers(min_value=2, max_value=16),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_decision_is_threshold_crossing(self, n, txds_value):
        # The pixel is approximated iff one of its two predicted
        # AF-SSIM values clears the threshold (Fig. 13 flow).
        pred_n = float(af_ssim_n(n))
        pred_t = float(af_ssim_txds(txds_value))
        for threshold in (0.1, 0.4, 0.7):
            d = PerceptionAwareTextureUnit(PATU, threshold).decide(
                np.array([n]), np.array([txds_value])
            )
            expected = pred_n > threshold or pred_t > threshold
            assert bool(d.prediction.approximated[0]) == expected

    @_settings
    @given(st.lists(st.integers(min_value=1, max_value=16), min_size=1, max_size=32))
    def test_modes_partition_pixels(self, ns):
        n = np.asarray(ns)
        txds = np.linspace(0, 1, len(ns))
        d = PerceptionAwareTextureUnit(PATU, 0.4).decide(n, txds)
        af = d.mode == FilterMode.AF
        tf = (d.mode == FilterMode.TF_TF_LOD) | (d.mode == FilterMode.TF_AF_LOD)
        assert np.array_equal(af | tf, np.ones(len(ns), bool))
        assert not (af & tf).any()
        # AF mode only on genuinely anisotropic, non-approximated pixels.
        assert np.array_equal(af, (n > 1) & ~d.prediction.approximated)
