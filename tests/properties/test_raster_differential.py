"""Differential property tests: binned rasterizer vs the legacy path.

Two backends, one contract — *bit*-identical G-buffers. The suite
drives both with the repo's seven game scenes (real meshes, real
camera paths) and with seeded random triangle soups whose distribution
is deliberately hostile: degenerate slivers, near-collinear vertices,
huge screen-crossing triangles, strongly varying ``w``.

Only the eight G-buffer arrays are compared. Work counters
(``fragments_generated``/``fragments_passed_depth``) are *expected* to
differ: hierarchical-Z excludes depth-buried tiles the legacy path
still evaluates.
"""

import numpy as np
import pytest

from repro.raster.binned import BinnedRasterizer
from repro.raster.rasterizer import Rasterizer
from repro.geometry.transform import TransformedTriangles
from repro.renderer.pipeline import render_gbuffer
from repro.workloads.games import get_workload

GB_ARRAYS = ("tex_id", "depth", "u", "v", "dudx", "dvdx", "dudy", "dvdy")

#: One entry per distinct game (Table II has seven), at the smallest
#: published resolution, scaled far down — the *geometry* still
#: exercises every rasterizer path, only the pixel count shrinks.
GAME_CASES = [
    ("HL2-640x480", 0.125),
    ("doom3-640x480", 0.125),
    ("grid-1280x1024", 0.0625),
    ("nfs-1280x1024", 0.0625),
    ("stal-1280x1024", 0.0625),
    ("Ut3-1280x1024", 0.0625),
    ("wolf-640x480", 0.125),
]


def _assert_identical(legacy_gb, binned_gb, label):
    for name in GB_ARRAYS:
        assert (
            getattr(legacy_gb, name).tobytes()
            == getattr(binned_gb, name).tobytes()
        ), f"{label}: G-buffer array {name!r} diverged"


@pytest.mark.parametrize("name,scale", GAME_CASES, ids=[c[0] for c in GAME_CASES])
def test_game_frames_bit_identical(name, scale):
    workload = get_workload(name)
    width, height = workload.scaled_size(scale)
    camera = workload.camera(1)
    legacy = render_gbuffer(workload.scene, camera, width, height, raster="legacy")
    binned = render_gbuffer(workload.scene, camera, width, height, raster="binned")
    _assert_identical(legacy.gbuffer, binned.gbuffer, name)


def _triangle_soup(seed: int, count: int = 80) -> TransformedTriangles:
    """A hostile batch of near-clipped triangles, in clip space.

    Roughly a quarter are degenerate slivers (third vertex dragged
    onto the opposite edge), a few are huge screen-crossing triangles
    (scissor-clamped bounding boxes, grazing edges), and every vertex
    carries its own ``w`` so perspective division is non-trivial.
    """
    rng = np.random.default_rng(seed)
    ndc = np.empty((count, 3, 3))
    ndc[:, :, :2] = rng.uniform(-1.4, 1.4, (count, 3, 2))
    ndc[:, :, 2] = rng.uniform(0.05, 0.95, (count, 3))

    sliver = rng.random(count) < 0.25
    t = rng.uniform(0.0, 1.0, (count, 1))
    on_edge = ndc[:, 0, :2] + t * (ndc[:, 1, :2] - ndc[:, 0, :2])
    wobble = rng.normal(0.0, 1e-6, (count, 2))
    ndc[sliver, 2, :2] = (on_edge + wobble)[sliver]

    huge = rng.random(count) < 0.1
    ndc[huge, :, :2] *= 8.0

    w = rng.uniform(0.5, 4.0, (count, 3, 1))
    clip = np.concatenate([ndc * w, w], axis=2)
    return TransformedTriangles(
        clip_positions=clip,
        uvs=rng.uniform(-3.0, 3.0, (count, 3, 2)),
        texture="soup",
    )


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 7])
def test_triangle_soup_bit_identical(seed):
    width, height = 97, 61  # prime-ish: tiles never align with the frame
    legacy = Rasterizer(width, height)
    binned = BinnedRasterizer(width, height)
    for batch in range(3):
        tris = _triangle_soup(seed * 31 + batch)
        legacy.draw(tris, batch)
        binned.draw(tris, batch)
    binned.finalize()
    _assert_identical(legacy.gbuffer, binned.gbuffer, f"soup seed={seed}")


@pytest.mark.parametrize("tile_size", [2, 6, 10, 32])
def test_triangle_soup_tile_size_invariant(tile_size):
    width, height = 64, 48
    legacy = Rasterizer(width, height)
    binned = BinnedRasterizer(width, height, tile_size=tile_size)
    tris = _triangle_soup(99, count=60)
    legacy.draw(tris, 0)
    binned.draw(tris, 0)
    binned.finalize()
    _assert_identical(legacy.gbuffer, binned.gbuffer, f"tile={tile_size}")


def test_soup_actually_contains_degenerates():
    # Guard the generator itself: if a refactor made the slivers
    # vanish, the differential tests would silently weaken.
    tris = _triangle_soup(5, count=400)
    ndc = tris.clip_positions[:, :, :2] / tris.clip_positions[:, :, 3:]
    e1 = ndc[:, 1] - ndc[:, 0]
    e2 = ndc[:, 2] - ndc[:, 0]
    area2 = np.abs(e1[:, 0] * e2[:, 1] - e1[:, 1] * e2[:, 0])
    assert (area2 < 1e-4).sum() > 20, "sliver population collapsed"
    assert (area2 > 1.0).sum() > 20, "large-triangle population collapsed"
