"""Domain properties of the AF-SSIM predictors under adversarial input.

The graceful-degradation contract (``docs/resilience.md``): for valid
inputs the predictors return finite values in ``[0, 1]``; for
degenerate inputs (NaN, infinity, out-of-domain) they raise a *typed*
:class:`~repro.errors.DegenerateInputError` — they never return NaN.
The two-stage predictor sits above those guards and must never raise
at all: corrupted state is sanitized and marked degraded instead.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.af_ssim import af_ssim_n, af_ssim_txds
from repro.core.predictor import TwoStagePredictor
from repro.core.scenarios import get_scenario
from repro.errors import DegenerateInputError

_settings = settings(max_examples=60, deadline=None)

#: Valid anisotropy degrees, including absurdly large but finite ones —
#: the formula must stay overflow-free (no RuntimeWarning, no NaN).
_valid_n = st.floats(
    min_value=1.0, max_value=1e12, allow_nan=False, allow_infinity=False
)

#: Degenerate N: anything below 1 (including -inf), NaN, +inf.
_degenerate_n = st.one_of(
    st.floats(max_value=1.0, exclude_max=True, allow_nan=False),
    st.just(float("nan")),
    st.just(float("inf")),
)

_valid_txds = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)

_degenerate_txds = st.one_of(
    st.floats(min_value=1.0 + 1e-6, allow_nan=False),
    st.floats(max_value=-1e-6, allow_nan=False),
    st.just(float("nan")),
)

_adversarial_float = st.floats(allow_nan=True, allow_infinity=True)


@_settings
@given(n=_valid_n)
def test_af_ssim_n_maps_valid_degrees_into_unit_interval(n):
    value = float(af_ssim_n(np.asarray([n]))[0])
    assert np.isfinite(value)
    assert 0.0 <= value <= 1.0


@_settings
@given(n=_degenerate_n)
def test_af_ssim_n_raises_typed_error_for_degenerate_degrees(n):
    with pytest.raises(DegenerateInputError):
        af_ssim_n(np.asarray([n]))


def test_af_ssim_n_boundary_values():
    assert float(af_ssim_n(np.asarray([1.0]))[0]) == pytest.approx(1.0)
    huge = float(af_ssim_n(np.asarray([1e300]))[0])
    assert np.isfinite(huge)
    assert 0.0 <= huge <= 1.0


@_settings
@given(t=_valid_txds)
def test_af_ssim_txds_maps_valid_txds_into_unit_interval(t):
    value = float(af_ssim_txds(np.asarray([t]))[0])
    assert np.isfinite(value)
    assert 0.0 <= value <= 1.0


@_settings
@given(t=_degenerate_txds)
def test_af_ssim_txds_raises_typed_error_for_degenerate_txds(t):
    with pytest.raises(DegenerateInputError):
        af_ssim_txds(np.asarray([t]))


@_settings
@given(
    n=st.lists(
        st.integers(min_value=-8, max_value=64), min_size=1, max_size=32
    ),
    data=st.data(),
)
def test_predictor_never_raises_or_nans_on_adversarial_state(n, data):
    txds = data.draw(
        st.lists(_adversarial_float, min_size=len(n), max_size=len(n))
    )
    predictor = TwoStagePredictor(get_scenario("patu"), 0.4)
    result = predictor.predict(
        np.asarray(n, dtype=np.int64), np.asarray(txds, dtype=np.float64)
    )
    assert np.isfinite(result.predicted_n).all()
    assert np.isfinite(result.predicted_txds).all()
    # degraded pixels are never approximated — they fall back to AF
    assert not (result.approximated & result.degraded).any()
    # every invalid input element is flagged
    bad_n = (np.asarray(n) < 1) | (np.asarray(n) > 16)
    assert result.degraded[bad_n].all()
