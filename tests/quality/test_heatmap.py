"""Tests for per-tile quality heatmaps and their exported artifacts."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ReproError
from repro.obs import TELEMETRY
from repro.quality.heatmap import (
    export_quality_maps,
    quality_maps,
    tile_reduce_mean,
)
from repro.quality.imageio import read_png


class TestTileReduce:
    def test_exact_tiling_averages_each_block(self):
        map2d = np.arange(16, dtype=np.float64).reshape(4, 4)
        tiles = tile_reduce_mean(map2d, 2)
        assert tiles.shape == (2, 2)
        assert tiles[0, 0] == pytest.approx(np.mean([0, 1, 4, 5]))
        assert tiles[1, 1] == pytest.approx(np.mean([10, 11, 14, 15]))

    def test_partial_border_tiles_average_covered_pixels_only(self):
        # 5x3 with tile 2: border tiles are 1x2, 2x1 and 1x1.
        map2d = np.arange(15, dtype=np.float64).reshape(5, 3)
        tiles = tile_reduce_mean(map2d, 2)
        assert tiles.shape == (3, 2)
        assert tiles[0, 1] == pytest.approx(np.mean(map2d[0:2, 2:3]))
        assert tiles[2, 0] == pytest.approx(np.mean(map2d[4:5, 0:2]))
        assert tiles[2, 1] == pytest.approx(map2d[4, 2])

    def test_tile_covering_whole_map_is_the_global_mean(self):
        rng = np.random.default_rng(3)
        map2d = rng.random((7, 11))
        tiles = tile_reduce_mean(map2d, 64)
        assert tiles.shape == (1, 1)
        assert tiles[0, 0] == pytest.approx(map2d.mean())

    def test_tile_size_one_is_identity(self):
        map2d = np.arange(6, dtype=np.float64).reshape(2, 3)
        assert np.array_equal(tile_reduce_mean(map2d, 1), map2d)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ReproError):
            tile_reduce_mean(np.zeros((2, 2, 2)), 2)
        with pytest.raises(ReproError):
            tile_reduce_mean(np.zeros((2, 2)), 0)


class TestQualityMaps:
    def test_identical_images_score_one_everywhere(self, capture):
        base = capture.baseline_luminance
        index_map, tile_map = quality_maps(
            base, base, tile_size=capture.tile_size
        )
        assert index_map.shape == base.shape
        assert index_map.min() > 0.99
        assert tile_map.min() > 0.99

    def test_localized_damage_shows_in_the_right_tile(self, capture):
        base = capture.baseline_luminance
        damaged = base.copy()
        t = capture.tile_size
        damaged[:t, :t] = 1.0 - damaged[:t, :t]  # invert one tile
        _, tile_map = quality_maps(base, damaged, tile_size=t)
        assert tile_map[0, 0] < 0.9
        assert tile_map[-1, -1] > 0.99


class TestExport:
    @pytest.fixture()
    def artifacts(self, capture, tmp_path):
        TELEMETRY.reset()
        TELEMETRY.enabled = True
        damaged = capture.baseline_luminance.copy()
        damaged[:16, :16] = 0.0
        paths = export_quality_maps(
            capture, damaged, tmp_path / "maps",
            scenario="patu", threshold=0.4,
        )
        return paths, damaged

    def test_all_three_artifacts_written(self, artifacts, capture):
        paths, _ = artifacts
        assert set(paths) == {"npz", "ssim_png", "tiles_png"}
        stem = f"{capture.workload_name}-f{capture.frame_index}"
        assert paths["npz"].name == f"{stem}.npz"
        for path in paths.values():
            assert path.exists() and path.stat().st_size > 0

    def test_npz_carries_exact_maps_and_metadata(self, artifacts, capture):
        paths, damaged = artifacts
        with np.load(paths["npz"]) as doc:
            expected_ssim, expected_tiles = quality_maps(
                capture.baseline_luminance, damaged,
                tile_size=capture.tile_size,
            )
            assert np.array_equal(doc["ssim"], expected_ssim)
            assert np.array_equal(doc["tile_ssim"], expected_tiles)
            assert int(doc["tile_size"]) == capture.tile_size
            assert str(doc["workload"]) == capture.workload_name
            assert float(doc["threshold"]) == 0.4
            assert str(doc["scenario"]) == "patu"

    def test_pngs_decode_to_frame_sized_gray_maps(self, artifacts, capture):
        paths, _ = artifacts
        for key in ("ssim_png", "tiles_png"):
            image = read_png(paths[key])
            assert image.shape == (capture.height, capture.width)
        # The damaged corner must be visibly darker than pristine area.
        tiles = read_png(paths["tiles_png"])
        assert tiles[0, 0] < tiles[-1, -1]

    def test_tile_histogram_fed(self, artifacts, capture):
        hist = TELEMETRY.metrics.histogram("quality.tile_mssim").summary()
        with np.load(artifacts[0]["npz"]) as doc:
            tile_map = doc["tile_ssim"]
        assert hist["count"] == tile_map.size
        assert hist["mean"] == pytest.approx(tile_map.mean())
