"""Tests for PGM/PPM/PNG image I/O."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.quality.imageio import (
    read_png,
    read_pnm,
    write_pgm,
    write_png,
    write_ppm,
)


class TestRoundTrip:
    def test_pgm_round_trip(self, tmp_path, rng):
        img = rng.random((16, 24))
        path = write_pgm(tmp_path / "x.pgm", img)
        back = read_pnm(path)
        assert back.shape == (16, 24)
        assert np.abs(back - img).max() <= 1.0 / 255.0

    def test_ppm_round_trip(self, tmp_path, rng):
        img = rng.random((8, 12, 3))
        path = write_ppm(tmp_path / "x.ppm", img)
        back = read_pnm(path)
        assert back.shape == (8, 12, 3)
        assert np.abs(back - img).max() <= 1.0 / 255.0

    def test_ppm_drops_alpha(self, tmp_path):
        img = np.zeros((4, 4, 4))
        img[..., 3] = 1.0
        path = write_ppm(tmp_path / "a.ppm", img)
        assert read_pnm(path).shape == (4, 4, 3)

    def test_values_clamped(self, tmp_path):
        img = np.array([[2.0, -1.0]])
        # 1x2 is tiny but legal.
        path = write_pgm(tmp_path / "c.pgm", img)
        back = read_pnm(path)
        assert back[0, 0] == 1.0 and back[0, 1] == 0.0


class TestPng:
    def test_gray_round_trip(self, tmp_path, rng):
        img = rng.random((16, 24))
        path = write_png(tmp_path / "x.png", img)
        assert path.read_bytes()[:8] == b"\x89PNG\r\n\x1a\n"
        back = read_png(path)
        assert back.shape == (16, 24)
        assert np.abs(back - img).max() <= 1.0 / 255.0

    def test_rgb_round_trip(self, tmp_path, rng):
        img = rng.random((8, 12, 3))
        back = read_png(write_png(tmp_path / "x.png", img))
        assert back.shape == (8, 12, 3)
        assert np.abs(back - img).max() <= 1.0 / 255.0

    def test_alpha_dropped(self, tmp_path):
        img = np.zeros((4, 4, 4))
        img[..., 3] = 1.0
        assert read_png(write_png(tmp_path / "a.png", img)).shape == (4, 4, 3)

    def test_bad_shape_rejected(self, tmp_path):
        with pytest.raises(ReproError):
            write_png(tmp_path / "x.png", np.zeros((4, 4, 2)))

    def test_not_a_png_rejected(self, tmp_path):
        p = tmp_path / "bad.png"
        p.write_bytes(b"P5\n2 2\n255\n" + b"\x00" * 4)
        with pytest.raises(ReproError):
            read_png(p)


class TestValidation:
    def test_pgm_requires_2d(self, tmp_path):
        with pytest.raises(ReproError):
            write_pgm(tmp_path / "x.pgm", np.zeros((4, 4, 3)))

    def test_ppm_requires_3_channels(self, tmp_path):
        with pytest.raises(ReproError):
            write_ppm(tmp_path / "x.ppm", np.zeros((4, 4)))

    def test_non_finite_rejected(self, tmp_path):
        img = np.zeros((4, 4))
        img[0, 0] = np.nan
        with pytest.raises(ReproError):
            write_pgm(tmp_path / "x.pgm", img)

    def test_bad_magic_rejected(self, tmp_path):
        p = tmp_path / "bad.pnm"
        p.write_bytes(b"P3\n2 2\n255\n")
        with pytest.raises(ReproError):
            read_pnm(p)

    def test_truncated_payload_rejected(self, tmp_path):
        p = tmp_path / "trunc.pgm"
        p.write_bytes(b"P5\n4 4\n255\n\x00\x00")
        with pytest.raises(ReproError):
            read_pnm(p)

    def test_comments_in_header(self, tmp_path):
        p = tmp_path / "c.pgm"
        p.write_bytes(b"P5\n# a comment\n2 1\n255\n\x00\xff")
        back = read_pnm(p)
        assert back.shape == (1, 2)
        assert back[0, 1] == 1.0
