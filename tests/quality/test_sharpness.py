"""Tests for the gradient-energy sharpness metric."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.quality.sharpness import gradient_energy, sharpness_ratio


def _checker(size=32, period=2):
    return ((np.indices((size, size)) // period).sum(0) % 2).astype(float)


def _box_blur(img):
    out = img.copy()
    for axis in (0, 1):
        out = (np.roll(out, 1, axis) + out + np.roll(out, -1, axis)) / 3
    return out


class TestGradientEnergy:
    def test_constant_image_has_zero_energy(self):
        assert gradient_energy(np.full((8, 8), 0.5)) == 0.0

    def test_known_ramp_gradient(self):
        # Luminance ramp with slope 0.1 per pixel along x.
        ramp = np.tile(np.arange(16) * 0.1, (16, 1))
        assert gradient_energy(ramp) == pytest.approx(0.1)

    def test_blur_reduces_energy(self):
        img = _checker()
        assert gradient_energy(_box_blur(img)) < gradient_energy(img)

    def test_finer_detail_higher_energy(self):
        assert gradient_energy(_checker(period=2)) > gradient_energy(
            _checker(period=8)
        )

    def test_mask_restricts_region(self):
        img = np.zeros((16, 16))
        img[:, 8:] = _checker(16)[:, 8:]  # detail only on the right half
        left = np.zeros((16, 16), dtype=bool)
        left[:, :8] = True
        right = ~left
        assert gradient_energy(img, right) > gradient_energy(img, left)

    def test_validation(self):
        with pytest.raises(ReproError):
            gradient_energy(np.zeros((2, 2)))
        with pytest.raises(ReproError):
            gradient_energy(np.zeros((8, 8, 3)))
        with pytest.raises(ReproError):
            gradient_energy(np.zeros((8, 8)), np.zeros((4, 4), dtype=bool))
        with pytest.raises(ReproError):
            gradient_energy(np.zeros((8, 8)), np.zeros((8, 8), dtype=bool))


class TestSharpnessRatio:
    def test_identity_is_one(self):
        img = _checker()
        assert sharpness_ratio(img, img) == pytest.approx(1.0)

    def test_sharp_vs_blurred_above_one(self):
        img = _checker()
        assert sharpness_ratio(img, _box_blur(img)) > 1.0

    def test_zero_denominator_rejected(self):
        with pytest.raises(ReproError):
            sharpness_ratio(_checker(), np.full((32, 32), 0.5))
