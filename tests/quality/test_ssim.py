"""Tests for SSIM/MSSIM and the classic metrics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ReproError
from repro.quality.metrics import mse, psnr
from repro.quality.ssim import mssim, ssim_components, ssim_map


def _image(seed=0, size=32):
    return np.random.default_rng(seed).random((size, size))


class TestSsimBasics:
    def test_identical_images_score_one(self):
        img = _image()
        assert mssim(img, img) == pytest.approx(1.0)
        assert np.allclose(ssim_map(img, img), 1.0)

    def test_symmetry(self):
        a, b = _image(1), _image(2)
        assert mssim(a, b) == pytest.approx(mssim(b, a))

    def test_independent_noise_scores_low(self):
        a, b = _image(1), _image(2)
        assert mssim(a, b) < 0.2

    def test_range_is_bounded(self):
        a, b = _image(3), _image(4)
        m = ssim_map(a, b)
        assert m.min() >= -1.0 - 1e-9
        assert m.max() <= 1.0 + 1e-9

    def test_constant_images(self):
        a = np.full((16, 16), 0.5)
        assert mssim(a, a.copy()) == pytest.approx(1.0)
        b = np.full((16, 16), 0.6)
        # Same structure, different luminance: high but below 1.
        assert 0.5 < mssim(a, b) < 1.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ReproError):
            mssim(_image(size=32), _image(size=16))

    def test_too_small_image_rejected(self):
        with pytest.raises(ReproError):
            mssim(np.zeros((8, 8)), np.zeros((8, 8)))

    def test_requires_2d(self):
        with pytest.raises(ReproError):
            mssim(np.zeros((16, 16, 3)), np.zeros((16, 16, 3)))


class TestSsimSensitivity:
    def test_blur_hurts_more_than_tiny_noise(self):
        # SSIM's reason for existing: structure loss (blur) is punished
        # even when pixelwise error is modest.
        rng = np.random.default_rng(5)
        img = (np.indices((64, 64)).sum(0) // 4 % 2).astype(float)
        blurred = img.copy()
        for axis in (0, 1):
            blurred = (
                np.roll(blurred, 1, axis) + blurred + np.roll(blurred, -1, axis)
            ) / 3
        noisy = np.clip(img + rng.normal(0, 0.02, img.shape), 0, 1)
        assert mssim(img, noisy) > mssim(img, blurred)

    @settings(max_examples=15)
    @given(st.floats(min_value=0.0, max_value=0.4))
    def test_monotone_in_noise_level(self, sigma):
        rng = np.random.default_rng(9)
        img = _image(6)
        a = np.clip(img + rng.normal(0, sigma, img.shape), 0, 1)
        b = np.clip(img + rng.normal(0, sigma + 0.3, img.shape), 0, 1)
        assert mssim(img, a) >= mssim(img, b) - 0.05

    def test_components_multiply_to_map(self):
        a, b = _image(7), _image(8)
        lum, cs = ssim_components(a, b)
        assert np.allclose(lum * cs, ssim_map(a, b))

    def test_luminance_component_ignores_contrast(self):
        a = _image(10)
        shifted = np.clip(a * 0.5 + 0.25, 0, 1)  # contrast halved, mean kept
        lum, cs = ssim_components(a, shifted)
        assert lum.mean() > cs.mean()


class TestClassicMetrics:
    def test_mse_zero_for_identical(self):
        img = _image()
        assert mse(img, img) == 0.0

    def test_psnr_infinite_for_identical(self):
        img = _image()
        assert psnr(img, img) == np.inf

    def test_psnr_known_value(self):
        a = np.zeros((16, 16))
        b = np.full((16, 16), 0.1)
        assert psnr(a, b) == pytest.approx(20.0)  # 10*log10(1/0.01)

    def test_mse_shape_mismatch(self):
        with pytest.raises(ReproError):
            mse(np.zeros((4, 4)), np.zeros((5, 5)))

    def test_ssim_and_psnr_agree_on_ordering_for_noise(self):
        img = _image(12)
        rng = np.random.default_rng(13)
        small = np.clip(img + rng.normal(0, 0.05, img.shape), 0, 1)
        large = np.clip(img + rng.normal(0, 0.3, img.shape), 0, 1)
        assert mssim(img, small) > mssim(img, large)
        assert psnr(img, small) > psnr(img, large)
