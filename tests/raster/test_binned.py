"""Tests for the sort-middle binned rasterizer.

The binned backend's contract is *bit*-identity with the legacy
immediate-mode rasterizer — its fine pass evaluates the exact legacy
expressions on candidate subsets — so the assertions here compare
``tobytes()`` of G-buffer arrays, never "closeness". Work counters
(``fragments_generated`` etc.) are compared only where the geometry
makes them provably equal (no occlusion → nothing for hierarchical-Z
to cull).
"""

import numpy as np
import pytest

from repro.errors import PipelineError
from repro.geometry.camera import Camera
from repro.geometry.clipping import clip_triangles_near
from repro.geometry.mesh import make_quad
from repro.geometry.transform import TransformedTriangles, transform_mesh
from repro.raster.binned import BinnedRasterizer, _ragged_indices, _segment_min
from repro.raster.rasterizer import Rasterizer

GB_ARRAYS = ("tex_id", "depth", "u", "v", "dudx", "dvdx", "dudy", "dvdy")


def _screen_quad(z: float, size: float = 1.0, uv_scale: float = 1.0):
    corners = np.array(
        [
            [-size, -size, z],
            [size, -size, z],
            [size, size, z],
            [-size, size, z],
        ],
        dtype=np.float64,
    )
    return make_quad(corners, "t", uv_scale=uv_scale)


def _draw(r, mesh, width, height, texture_id=0):
    mvp = Camera(eye=(0, 0, 0), target=(0, 0, -1)).view_projection(width, height)
    r.draw(clip_triangles_near(transform_mesh(mesh, mvp)), texture_id)


def _assert_same_gbuffer(legacy, binned):
    for name in GB_ARRAYS:
        assert (
            getattr(legacy, name).tobytes() == getattr(binned, name).tobytes()
        ), f"G-buffer array {name!r} diverged from the legacy reference"


class TestHelpers:
    def test_segment_min_broadcasts_per_segment(self):
        segments = np.array([0, 0, 1, 1, 1, 7])
        values = np.array([3.0, 1.0, 9.0, -2.0, 5.0, 4.0])
        out = _segment_min(segments, values)
        assert out.tolist() == [1.0, 1.0, -2.0, -2.0, -2.0, 4.0]

    def test_ragged_indices_flattens_both_families(self):
        out = _ragged_indices(
            np.array([0]), np.array([3]), np.array([10]), np.array([2])
        )
        assert out.tolist() == [0, 1, 2, 10, 11]

    def test_ragged_indices_tolerates_zero_counts(self):
        out = _ragged_indices(
            np.array([4, 0]), np.array([0, 2]), np.array([9, 20]), np.array([1, 0])
        )
        assert out.tolist() == [0, 1, 9]

    def test_ragged_indices_empty(self):
        empty = np.empty(0, dtype=np.int64)
        assert _ragged_indices(empty, empty, empty, empty).size == 0


class TestValidation:
    def test_bad_viewport_rejected(self):
        with pytest.raises(PipelineError):
            BinnedRasterizer(0, 64)

    @pytest.mark.parametrize("tile_size", [0, 1, 7, 9])
    def test_tile_size_must_be_even_and_at_least_two(self, tile_size):
        with pytest.raises(PipelineError):
            BinnedRasterizer(64, 64, tile_size=tile_size)

    def test_bin_size_must_be_tile_multiple(self):
        with pytest.raises(PipelineError):
            BinnedRasterizer(64, 64, tile_size=8, bin_size=12)

    def test_bin_size_defaults_to_eight_tiles(self):
        r = BinnedRasterizer(64, 64, tile_size=4)
        assert r.bin_size == 32

    def test_draw_after_finalize_rejected(self):
        r = BinnedRasterizer(32, 32)
        r.finalize()
        with pytest.raises(PipelineError):
            _draw(r, _screen_quad(z=-5.0), 32, 32)

    def test_finalize_twice_rejected(self):
        r = BinnedRasterizer(32, 32)
        r.finalize()
        with pytest.raises(PipelineError):
            r.finalize()

    def test_texture_id_range_enforced(self):
        r = BinnedRasterizer(32, 32)
        mvp = Camera(eye=(0, 0, 0), target=(0, 0, -1)).view_projection(32, 32)
        tris = clip_triangles_near(transform_mesh(_screen_quad(z=-5.0), mvp))
        with pytest.raises(PipelineError):
            r.draw(tris, -1)
        with pytest.raises(PipelineError):
            r.draw(tris, int(np.iinfo(np.int16).max) + 1)

    def test_unclipped_triangles_rejected(self):
        r = BinnedRasterizer(32, 32)
        bad = TransformedTriangles(
            clip_positions=np.array(
                [[[0, 0, 0, -1.0], [1, 0, 0, 1.0], [0, 1, 0, 1.0]]]
            ),
            uvs=np.zeros((1, 3, 2)),
            texture="t",
        )
        with pytest.raises(PipelineError):
            r.draw(bad, 0)


class TestCoverage:
    def test_empty_finalize_is_noop(self):
        r = BinnedRasterizer(32, 32)
        r.finalize()
        assert r.gbuffer.num_visible == 0
        assert r.stats.fragments_generated == 0

    def test_fullscreen_quad_covers_everything(self):
        r = BinnedRasterizer(64, 64)
        _draw(r, _screen_quad(z=-1.0, size=2.0), 64, 64)
        r.finalize()
        assert r.gbuffer.num_visible == 64 * 64

    def test_draw_order_does_not_matter(self):
        r = BinnedRasterizer(64, 64)
        _draw(r, _screen_quad(z=-5.0, size=10.0), 64, 64, texture_id=1)
        _draw(r, _screen_quad(z=-10.0, size=20.0), 64, 64, texture_id=0)
        r.finalize()
        assert (r.gbuffer.tex_id == 1).all()


class TestWatertight:
    """The shared-diagonal pixels land in exactly one triangle."""

    @pytest.mark.parametrize("make", [Rasterizer, BinnedRasterizer])
    def test_fullscreen_quad_generates_each_pixel_once(self, make):
        # The quad's two triangles share a diagonal at equal depth: a
        # fill-rule gap would lose pixels, a double-hit would generate
        # more fragments than pixels. Both backends must count exactly
        # width*height.
        r = make(64, 64)
        _draw(r, _screen_quad(z=-1.0, size=2.0), 64, 64)
        if make is BinnedRasterizer:
            r.finalize()
        assert r.gbuffer.num_visible == 64 * 64
        assert r.stats.fragments_generated == 64 * 64

    @pytest.mark.parametrize("make", [Rasterizer, BinnedRasterizer])
    def test_rotated_shared_edge_still_watertight(self, make):
        # A diamond (rotated quad) whose diagonal is not axis-aligned.
        corners = np.array(
            [[0.0, -1.5, -5.0], [1.5, 0.0, -5.0],
             [0.0, 1.5, -5.0], [-1.5, 0.0, -5.0]]
        )
        r = make(64, 64)
        _draw(r, make_quad(corners, "t"), 64, 64)
        if make is BinnedRasterizer:
            r.finalize()
        # No overlap and no occlusion: every visible pixel was
        # generated exactly once.
        assert r.stats.fragments_generated == r.gbuffer.num_visible > 0


class TestCulling:
    def _occluded_scene(self, width=128, height=128):
        r = BinnedRasterizer(width, height, tile_size=8)
        # Far geometry first, then a fullscreen near occluder: the
        # coarse pass must reject the far quad's tiles against the
        # occluder's hierarchical-Z.
        _draw(r, _screen_quad(z=-50.0, size=100.0), width, height, texture_id=0)
        _draw(r, _screen_quad(z=-2.0, size=4.0), width, height, texture_id=1)
        r.finalize()
        return r

    def test_hiz_culls_depth_buried_tiles(self):
        r = self._occluded_scene()
        assert r.stats.tiles_culled_hiz + r.stats.tiles_culled_occluded > 0

    def test_culling_never_changes_the_image(self):
        width = height = 128
        r = self._occluded_scene(width, height)
        legacy = Rasterizer(width, height)
        _draw(legacy, _screen_quad(z=-50.0, size=100.0), width, height, 0)
        _draw(legacy, _screen_quad(z=-2.0, size=4.0), width, height, 1)
        _assert_same_gbuffer(legacy.gbuffer, r.gbuffer)

    def test_culling_skips_work_the_legacy_path_does(self):
        r = self._occluded_scene()
        legacy = Rasterizer(128, 128)
        _draw(legacy, _screen_quad(z=-50.0, size=100.0), 128, 128, 0)
        _draw(legacy, _screen_quad(z=-2.0, size=4.0), 128, 128, 1)
        assert r.stats.fragments_generated < legacy.stats.fragments_generated

    def test_bin_pairs_form_a_valid_binning(self):
        r = self._occluded_scene()
        bin_ids, tri_ids = r.bin_pairs
        assert bin_ids.shape == tri_ids.shape
        assert bin_ids.size > 0
        bins_x = -(-r.width // r.bin_size)
        bins_y = -(-r.height // r.bin_size)
        assert bin_ids.min() >= 0 and bin_ids.max() < bins_x * bins_y
        assert tri_ids.min() >= 0
        assert r.stats.bins == np.unique(bin_ids).size

    def test_fullscreen_triangle_retires_every_tile(self):
        # One full-cover triangle: nothing can be hi-Z culled (a tile's
        # sole occluder never culls itself), but every tile is still
        # *retired* — its content was decided by the occluder, so the
        # counter reports the whole 8x8 tile grid as closed early.
        r = BinnedRasterizer(64, 64, tile_size=8)
        r.draw(
            TransformedTriangles(
                clip_positions=np.array(
                    [[[-5.0, -5.0, 0.5, 1.0], [9.0, -5.0, 0.5, 1.0],
                      [-5.0, 9.0, 0.5, 1.0]]]
                ),
                uvs=np.zeros((1, 3, 2)),
                texture="t",
            ),
            0,
        )
        r.finalize()
        assert r.gbuffer.num_visible == 64 * 64
        assert r.stats.tiles_culled_hiz == 0
        assert r.stats.tiles_culled_occluded == 8 * 8

    def test_partial_cover_culls_nothing(self):
        # A sliver of one tile: no full-cover occluder anywhere, so
        # neither cull counter may fire.
        r = BinnedRasterizer(64, 64)
        r.draw(
            TransformedTriangles(
                clip_positions=np.array(
                    [[[-0.1, -0.1, 0.5, 1.0], [0.1, -0.1, 0.5, 1.0],
                      [0.0, 0.1, 0.5, 1.0]]]
                ),
                uvs=np.zeros((1, 3, 2)),
                texture="t",
            ),
            0,
        )
        r.finalize()
        assert 0 < r.gbuffer.num_visible < 64 * 64
        assert r.stats.tiles_culled_hiz == 0
        assert r.stats.tiles_culled_occluded == 0


class TestTileSizeInvariance:
    @pytest.mark.parametrize("tile_size", [2, 4, 8, 16, 32])
    def test_tile_size_never_changes_the_image(self, tile_size):
        width, height = 70, 54  # deliberately not tile-aligned
        legacy = Rasterizer(width, height)
        binned = BinnedRasterizer(width, height, tile_size=tile_size)
        for r in (legacy, binned):
            _draw(r, _screen_quad(z=-30.0, size=60.0), width, height, 0)
            _draw(r, _screen_quad(z=-6.0, size=3.0), width, height, 1)
            _draw(r, _screen_quad(z=-3.0, size=1.0), width, height, 2)
        binned.finalize()
        _assert_same_gbuffer(legacy.gbuffer, binned.gbuffer)
