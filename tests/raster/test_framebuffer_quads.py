"""Tests for the framebuffer and quad bookkeeping."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import PipelineError
from repro.raster.framebuffer import Framebuffer
from repro.raster.quads import quad_divergence_fraction, quad_ids


class TestFramebuffer:
    def test_clear_color_fills_frame(self):
        fb = Framebuffer(8, 4, clear_color=(0.1, 0.2, 0.3, 1.0))
        assert np.allclose(fb.color[3, 7], [0.1, 0.2, 0.3, 1.0])

    def test_scatter_write(self):
        fb = Framebuffer(8, 8)
        fb.write(
            np.array([0, 7]), np.array([0, 7]),
            np.array([[1, 0, 0, 1], [0, 1, 0, 1]], dtype=np.float32),
        )
        assert np.allclose(fb.color[0, 0], [1, 0, 0, 1])
        assert np.allclose(fb.color[7, 7], [0, 1, 0, 1])

    def test_writes_are_clamped(self):
        fb = Framebuffer(2, 2)
        fb.write(np.array([0]), np.array([0]),
                 np.array([[2.0, -1.0, 0.5, 1.0]], dtype=np.float32))
        assert np.allclose(fb.color[0, 0], [1.0, 0.0, 0.5, 1.0])

    def test_luminance_rec601(self):
        fb = Framebuffer(2, 2, clear_color=(1.0, 1.0, 1.0, 1.0))
        assert np.allclose(fb.luminance(), 1.0)
        fb2 = Framebuffer(2, 2, clear_color=(1.0, 0.0, 0.0, 1.0))
        assert np.allclose(fb2.luminance(), 0.299)

    def test_length_mismatch_rejected(self):
        fb = Framebuffer(4, 4)
        with pytest.raises(PipelineError):
            fb.write(np.array([0, 1]), np.array([0]), np.zeros((2, 4)))


class TestQuadIds:
    def test_pixels_of_one_quad_share_an_id(self):
        rows = np.array([0, 0, 1, 1])
        cols = np.array([0, 1, 0, 1])
        ids = quad_ids(rows, cols, width=8)
        assert len(set(ids.tolist())) == 1

    def test_adjacent_quads_differ(self):
        ids = quad_ids(np.array([0, 0]), np.array([1, 2]), width=8)
        assert ids[0] != ids[1]

    def test_row_stride(self):
        a = quad_ids(np.array([1]), np.array([7]), width=8)
        b = quad_ids(np.array([2]), np.array([0]), width=8)
        assert b[0] == a[0] + 1  # next quad row starts after 4 quads


class TestQuadDivergence:
    def test_uniform_decisions_never_diverge(self):
        rows, cols = np.divmod(np.arange(64), 8)
        assert quad_divergence_fraction(rows, cols, 8, np.ones(64, bool)) == 0.0
        assert quad_divergence_fraction(rows, cols, 8, np.zeros(64, bool)) == 0.0

    def test_alternating_columns_diverge_everywhere(self):
        rows, cols = np.divmod(np.arange(64), 8)
        decision = cols % 2 == 0
        assert quad_divergence_fraction(rows, cols, 8, decision) == 1.0

    def test_quad_aligned_pattern_never_diverges(self):
        rows, cols = np.divmod(np.arange(64), 8)
        decision = (cols // 2) % 2 == 0  # uniform within each 2x2 quad
        assert quad_divergence_fraction(rows, cols, 8, decision) == 0.0

    def test_single_pixel_quads_count_as_convergent(self):
        rows = np.array([0, 0])
        cols = np.array([0, 2])  # two different quads, one pixel each
        decision = np.array([True, False])
        assert quad_divergence_fraction(rows, cols, 8, decision) == 0.0

    def test_empty_input(self):
        empty = np.array([], dtype=np.int64)
        assert quad_divergence_fraction(empty, empty, 8, empty.astype(bool)) == 0.0

    @given(st.integers(min_value=1, max_value=60), st.integers(min_value=0, max_value=7))
    def test_fraction_bounds(self, n_pixels, seed):
        rng = np.random.default_rng(seed)
        rows = rng.integers(0, 16, n_pixels)
        cols = rng.integers(0, 16, n_pixels)
        decision = rng.random(n_pixels) > 0.5
        frac = quad_divergence_fraction(rows, cols, 16, decision)
        assert 0.0 <= frac <= 1.0
