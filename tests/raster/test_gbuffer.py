"""Tests for the G-buffer container."""

import numpy as np
import pytest

from repro.errors import PipelineError
from repro.raster.gbuffer import GBuffer


class TestEmptyGBuffer:
    def test_starts_uncovered(self):
        gb = GBuffer.empty(16, 8)
        assert gb.num_visible == 0
        assert not gb.coverage_mask.any()
        assert np.isinf(gb.depth).all()
        assert (gb.tex_id == -1).all()

    def test_shapes_are_height_by_width(self):
        gb = GBuffer.empty(32, 8)
        assert gb.tex_id.shape == (8, 32)
        assert gb.u.shape == (8, 32)

    def test_visible_indices_raster_order(self):
        gb = GBuffer.empty(8, 8)
        gb.tex_id[2, 5] = 0
        gb.tex_id[1, 3] = 0
        rows, cols = gb.visible_indices()
        assert rows.tolist() == [1, 2]
        assert cols.tolist() == [3, 5]

    def test_rejects_bad_size(self):
        with pytest.raises(PipelineError):
            GBuffer.empty(0, 8)
        with pytest.raises(PipelineError):
            GBuffer.empty(8, -1)
