"""Tests for the rasterizer: coverage, depth, interpolation, derivatives."""

import numpy as np
import pytest

from repro.errors import PipelineError
from repro.geometry.camera import Camera
from repro.geometry.clipping import clip_triangles_near
from repro.geometry.mesh import make_quad
from repro.geometry.transform import TransformedTriangles, transform_mesh
from repro.raster.rasterizer import Rasterizer


def _screen_quad(z: float, size: float = 1.0, uv_scale: float = 1.0):
    corners = np.array(
        [
            [-size, -size, z],
            [size, -size, z],
            [size, size, z],
            [-size, size, z],
        ],
        dtype=np.float64,
    )
    return make_quad(corners, "t", uv_scale=uv_scale)


def _render(mesh, width=64, height=64, texture_id=0, rasterizer=None):
    mvp = Camera(eye=(0, 0, 0), target=(0, 0, -1)).view_projection(width, height)
    tris = clip_triangles_near(transform_mesh(mesh, mvp))
    r = rasterizer or Rasterizer(width, height)
    r.draw(tris, texture_id)
    return r


class TestCoverage:
    def test_fullscreen_quad_covers_everything(self):
        r = _render(_screen_quad(z=-1.0, size=2.0))
        assert r.gbuffer.num_visible == 64 * 64

    def test_small_quad_covers_center(self):
        r = _render(_screen_quad(z=-10.0, size=1.0))
        gb = r.gbuffer
        assert gb.coverage_mask[32, 32]
        assert not gb.coverage_mask[0, 0]

    def test_empty_draw_is_noop(self):
        r = Rasterizer(32, 32)
        r.draw(
            TransformedTriangles(
                clip_positions=np.zeros((0, 3, 4)),
                uvs=np.zeros((0, 3, 2)),
                texture="t",
            ),
            0,
        )
        assert r.gbuffer.num_visible == 0

    def test_unclipped_triangles_rejected(self):
        r = Rasterizer(32, 32)
        bad = TransformedTriangles(
            clip_positions=np.array([[[0, 0, 0, -1.0], [1, 0, 0, 1.0], [0, 1, 0, 1.0]]]),
            uvs=np.zeros((1, 3, 2)),
            texture="t",
        )
        with pytest.raises(PipelineError):
            r.draw(bad, 0)


class TestDepth:
    def test_nearer_surface_wins(self):
        r = Rasterizer(64, 64)
        _render(_screen_quad(z=-10.0, size=20.0), texture_id=0, rasterizer=r)
        _render(_screen_quad(z=-5.0, size=10.0), texture_id=1, rasterizer=r)
        assert (r.gbuffer.tex_id == 1).all()

    def test_draw_order_does_not_matter(self):
        r = Rasterizer(64, 64)
        _render(_screen_quad(z=-5.0, size=10.0), texture_id=1, rasterizer=r)
        _render(_screen_quad(z=-10.0, size=20.0), texture_id=0, rasterizer=r)
        assert (r.gbuffer.tex_id == 1).all()

    def test_overdraw_statistic(self):
        # Near surface first: the far quad's fragments all fail early-Z,
        # so two generated fragments exist per finally-shaded pixel.
        r = Rasterizer(64, 64)
        _render(_screen_quad(z=-5.0, size=10.0), texture_id=1, rasterizer=r)
        _render(_screen_quad(z=-10.0, size=20.0), texture_id=0, rasterizer=r)
        assert r.stats.overdraw == pytest.approx(2.0, abs=0.05)


class TestInterpolation:
    # Half-extent that exactly fills a 60-degree square viewport at z.
    @staticmethod
    def _fit(z: float) -> float:
        return float(np.tan(np.radians(30.0)) * abs(z))

    def test_uv_interpolation_screen_aligned(self):
        # A viewport-fitted screen-parallel quad: u ramps 0 -> 1.
        r = _render(_screen_quad(z=-1.0, size=self._fit(1.0)))
        gb = r.gbuffer
        u_left = gb.u[32, 1]
        u_right = gb.u[32, 62]
        assert u_left < 0.05 and u_right > 0.95

    def test_v_axis_is_screen_y_down(self):
        # v=0 corners are at world bottom -> image bottom rows.
        r = _render(_screen_quad(z=-1.0, size=self._fit(1.0)))
        gb = r.gbuffer
        assert gb.v[62, 32] < 0.05  # bottom of image = low v
        assert gb.v[1, 32] > 0.95

    def test_perspective_correctness_on_oblique_plane(self):
        # A ground plane receding to the horizon: at the midpoint row of
        # the screen projection, linear-in-screen interpolation would
        # give v = 0.5; perspective-correct gives far less.
        corners = np.array(
            [[-5, -1, -1.0], [5, -1, -1.0], [5, -1, -50.0], [-5, -1, -50.0]],
            dtype=np.float64,
        )
        mesh = make_quad(corners, "t", two_sided=True)
        r = _render(mesh, width=64, height=64)
        gb = r.gbuffer
        col = gb.v[:, 32][gb.coverage_mask[:, 32]]
        # v values are strongly biased toward the near edge.
        assert np.median(col) < 0.35

    def test_analytic_derivatives_match_finite_differences(self):
        corners = np.array(
            [[-5, -1, -1.0], [5, -1, -1.0], [5, -1, -50.0], [-5, -1, -50.0]],
            dtype=np.float64,
        )
        mesh = make_quad(corners, "t", two_sided=True, uv_scale=4.0)
        r = _render(mesh, width=64, height=64)
        gb = r.gbuffer
        ys, xs = np.nonzero(gb.coverage_mask)
        # Pick interior pixels with a covered right and lower neighbour.
        for y, x in [(40, 30), (50, 20), (60, 40)]:
            if not (
                gb.coverage_mask[y, x]
                and gb.coverage_mask[y, x + 1]
                and gb.coverage_mask[y + 1, x]
            ):
                continue
            fd_dudx = gb.u[y, x + 1] - gb.u[y, x]
            fd_dvdy = gb.v[y + 1, x] - gb.v[y, x]
            assert gb.dudx[y, x] == pytest.approx(fd_dudx, rel=0.2, abs=1e-4)
            assert gb.dvdy[y, x] == pytest.approx(fd_dvdy, rel=0.2, abs=1e-4)


class TestValidation:
    def test_rejects_bad_viewport(self):
        with pytest.raises(PipelineError):
            Rasterizer(0, 10)

    def test_rejects_bad_texture_id(self):
        r = Rasterizer(8, 8)
        tris = TransformedTriangles(
            clip_positions=np.ones((1, 3, 4)),
            uvs=np.zeros((1, 3, 2)),
            texture="t",
        )
        with pytest.raises(PipelineError):
            r.draw(tris, -1)
