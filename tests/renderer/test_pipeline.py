"""Tests for the per-frame geometry front-end."""

import numpy as np
import pytest

from repro.errors import PipelineError
from repro.renderer.pipeline import render_gbuffer


class TestRenderGbuffer:
    def test_mini_scene_produces_fragments(self, mini_workload):
        camera = mini_workload.camera(0)
        frame = render_gbuffer(mini_workload.scene, camera, 128, 96)
        assert frame.gbuffer.num_visible > 1000
        assert frame.vertices == mini_workload.scene.total_vertices
        assert frame.triangles_after_cull > 0
        assert frame.tiles_touched > 0

    def test_texture_binding_table(self, mini_workload):
        camera = mini_workload.camera(0)
        frame = render_gbuffer(mini_workload.scene, camera, 128, 96)
        assert set(frame.texture_names) <= set(mini_workload.scene.textures)
        gb = frame.gbuffer
        used = np.unique(gb.tex_id[gb.coverage_mask])
        assert used.max() < len(frame.texture_names)

    def test_early_depth_stats_consistent(self, mini_workload):
        camera = mini_workload.camera(0)
        frame = render_gbuffer(mini_workload.scene, camera, 128, 96)
        stats = frame.raster_stats
        assert stats.fragments_passed_depth <= stats.fragments_generated
        assert frame.gbuffer.num_visible <= stats.fragments_passed_depth

    def test_deterministic(self, mini_workload):
        camera = mini_workload.camera(0)
        a = render_gbuffer(mini_workload.scene, camera, 128, 96)
        b = render_gbuffer(mini_workload.scene, camera, 128, 96)
        assert np.array_equal(a.gbuffer.u, b.gbuffer.u)
        assert np.array_equal(a.gbuffer.tex_id, b.gbuffer.tex_id)

    def test_rejects_bad_viewport(self, mini_workload):
        with pytest.raises(PipelineError):
            render_gbuffer(mini_workload.scene, mini_workload.camera(0), 0, 96)
