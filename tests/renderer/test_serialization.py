"""Tests for FrameCapture save/load."""

import numpy as np
import pytest

from repro.core.scenarios import SCENARIOS
from repro.errors import PipelineError
from repro.renderer.serialization import (
    FORMAT_VERSION,
    load_capture,
    save_capture,
)


class TestRoundTrip:
    def test_arrays_survive(self, tmp_path, capture):
        path = save_capture(tmp_path / "cap.npz", capture)
        loaded = load_capture(path)
        assert loaded.workload_name == capture.workload_name
        assert loaded.width == capture.width and loaded.height == capture.height
        assert np.array_equal(loaded.n, capture.n)
        assert np.array_equal(loaded.sample_keys, capture.sample_keys)
        assert np.allclose(loaded.txds, capture.txds)
        assert np.array_equal(loaded.af_lines, capture.af_lines)
        assert np.allclose(loaded.baseline_luminance, capture.baseline_luminance)
        assert loaded.workload.vertices == capture.workload.vertices

    def test_loaded_capture_evaluates_identically(self, tmp_path, session, capture):
        path = save_capture(tmp_path / "cap.npz", capture)
        loaded = load_capture(path)
        a = session.evaluate(capture, SCENARIOS["patu"], 0.4)
        b = session.evaluate(loaded, SCENARIOS["patu"], 0.4)
        assert a.mssim == pytest.approx(b.mssim, abs=1e-12)
        assert a.frame_cycles == pytest.approx(b.frame_cycles)
        assert a.events.trilinear_samples == b.events.trilinear_samples
        assert a.hierarchy.dram_bytes == b.hierarchy.dram_bytes

    def test_suffix_appended(self, tmp_path, capture):
        path = save_capture(tmp_path / "noext", capture)
        assert path.suffix == ".npz"
        assert path.exists()


class TestValidation:
    def test_missing_file(self, tmp_path):
        with pytest.raises(PipelineError):
            load_capture(tmp_path / "nope.npz")

    def test_version_check(self, tmp_path, capture):
        path = save_capture(tmp_path / "cap.npz", capture)
        data = dict(np.load(path, allow_pickle=False))
        data["meta_version"] = np.asarray([FORMAT_VERSION + 1])
        np.savez_compressed(path, **data)
        with pytest.raises(PipelineError, match="version"):
            load_capture(path)
