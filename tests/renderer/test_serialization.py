"""Tests for FrameCapture save/load."""

import pickle

import numpy as np
import pytest

from repro.core.scenarios import SCENARIOS
from repro.errors import PipelineError
from repro.renderer.serialization import (
    _ARRAY_FIELDS,
    FORMAT_VERSION,
    capture_from_npz_bytes,
    capture_to_npz_bytes,
    load_capture,
    save_capture,
)


class TestRoundTrip:
    def test_arrays_survive(self, tmp_path, capture):
        path = save_capture(tmp_path / "cap.npz", capture)
        loaded = load_capture(path)
        assert loaded.workload_name == capture.workload_name
        assert loaded.width == capture.width and loaded.height == capture.height
        assert np.array_equal(loaded.n, capture.n)
        assert np.array_equal(loaded.sample_keys, capture.sample_keys)
        assert np.allclose(loaded.txds, capture.txds)
        assert np.array_equal(loaded.af_lines, capture.af_lines)
        assert np.allclose(loaded.baseline_luminance, capture.baseline_luminance)
        assert loaded.workload.vertices == capture.workload.vertices

    def test_loaded_capture_evaluates_identically(self, tmp_path, session, capture):
        path = save_capture(tmp_path / "cap.npz", capture)
        loaded = load_capture(path)
        a = session.evaluate(capture, SCENARIOS["patu"], 0.4)
        b = session.evaluate(loaded, SCENARIOS["patu"], 0.4)
        assert a.mssim == pytest.approx(b.mssim, abs=1e-12)
        assert a.frame_cycles == pytest.approx(b.frame_cycles)
        assert a.events.trilinear_samples == b.events.trilinear_samples
        assert a.hierarchy.dram_bytes == b.hierarchy.dram_bytes

    def test_suffix_appended(self, tmp_path, capture):
        path = save_capture(tmp_path / "noext", capture)
        assert path.suffix == ".npz"
        assert path.exists()


class TestBytesRoundTrip:
    """The in-memory archive path used by the engine's capture store."""

    def test_every_array_field_survives_exactly(self, capture):
        loaded = capture_from_npz_bytes(capture_to_npz_bytes(capture))
        for name in _ARRAY_FIELDS:
            original = getattr(capture, name)
            restored = getattr(loaded, name)
            assert restored.dtype == original.dtype, name
            assert np.array_equal(restored, original), name

    def test_csr_sample_table_is_consistent(self, capture):
        loaded = capture_from_npz_bytes(capture_to_npz_bytes(capture))
        ptr = loaded.sample_row_ptr
        assert ptr[0] == 0
        assert ptr[-1] == loaded.sample_keys.shape[0]
        assert np.all(np.diff(ptr) >= 0)
        assert np.array_equal(ptr, capture.sample_row_ptr)

    def test_scalar_metadata_survives(self, capture):
        loaded = capture_from_npz_bytes(capture_to_npz_bytes(capture))
        assert loaded.frame_index == capture.frame_index
        assert loaded.tile_size == capture.tile_size
        assert loaded.clear_luminance == capture.clear_luminance
        assert loaded.workload == capture.workload

    def test_bad_bytes_raise(self):
        with pytest.raises((PipelineError, ValueError, OSError)):
            capture_from_npz_bytes(b"definitely not an npz archive")


class TestFrameResultPickle:
    """FrameResults must survive pickling (process-pool transport)."""

    def test_round_trip_preserves_metrics(self, session, capture):
        from repro.experiments.runner import extract_frame_metrics

        r = session.evaluate(capture, SCENARIOS["patu"], 0.4)
        restored = pickle.loads(pickle.dumps(r))
        assert extract_frame_metrics(restored) == extract_frame_metrics(r)
        assert restored.degraded_pixels == r.degraded_pixels
        assert restored.events.trilinear_samples == r.events.trilinear_samples

    def test_degraded_pixel_data_survives(self, session, capture):
        from repro.resilience import FAULTS, FaultPlan

        FAULTS.configure(FaultPlan.uniform(0.05, seed=7))
        try:
            r = session.evaluate(capture, SCENARIOS["patu"], 0.4)
        finally:
            FAULTS.disable()
        restored = pickle.loads(pickle.dumps(r))
        assert restored.degraded_pixels == r.degraded_pixels


class TestValidation:
    def test_missing_file(self, tmp_path):
        with pytest.raises(PipelineError):
            load_capture(tmp_path / "nope.npz")

    def test_version_check(self, tmp_path, capture):
        path = save_capture(tmp_path / "cap.npz", capture)
        data = dict(np.load(path, allow_pickle=False))
        data["meta_version"] = np.asarray([FORMAT_VERSION + 1])
        np.savez_compressed(path, **data)
        with pytest.raises(PipelineError, match="version"):
            load_capture(path)
