"""Tests for the render session: capture and design-point evaluation."""

import numpy as np
import pytest

from repro.config import GpuConfig
from repro.core.scenarios import SCENARIOS
from repro.renderer.session import RenderSession, _expand_ranges
from repro.texture.unit import TEXELS_PER_TRILINEAR


class TestExpandRanges:
    def test_basic(self):
        out = _expand_ranges(np.array([10, 100]), np.array([3, 2]))
        assert out.tolist() == [10, 11, 12, 100, 101]

    def test_empty(self):
        out = _expand_ranges(np.array([], dtype=np.int64), np.array([], dtype=np.int64))
        assert out.size == 0

    def test_zero_length_segments(self):
        out = _expand_ranges(np.array([5, 9]), np.array([0, 2]))
        assert out.tolist() == [9, 10]


class TestCapture:
    def test_capture_shape_consistency(self, capture):
        n = capture.num_pixels
        assert capture.rows.shape == (n,)
        assert capture.n.shape == (n,)
        assert capture.af_color.shape == (n, 4)
        assert capture.sample_row_ptr.shape == (n + 1,)
        assert capture.sample_keys.shape == (int(capture.sample_row_ptr[-1]),)
        assert capture.af_lines.shape == (
            capture.sample_keys.shape[0] * TEXELS_PER_TRILINEAR,
        )
        assert capture.tf_lines.shape == (n, TEXELS_PER_TRILINEAR)

    def test_pixels_sorted_in_tile_order(self, capture):
        assert np.all(np.diff(capture.tile_ids) >= 0)

    def test_csr_matches_n(self, capture):
        assert np.array_equal(np.diff(capture.sample_row_ptr), capture.n)

    def test_predictor_state_in_range(self, capture):
        assert capture.n.min() >= 1
        assert capture.n.max() <= 16
        assert capture.txds.min() >= 0.0 and capture.txds.max() <= 1.0
        assert capture.lod_af.max() <= capture.lod_tf.max() + 1e-9

    def test_ground_plane_is_anisotropic(self, capture):
        # The mini scene's receding floor must exercise AF.
        assert capture.mean_anisotropy > 1.5

    def test_baseline_luminance_shape(self, capture):
        assert capture.baseline_luminance.shape == (capture.height, capture.width)

    def test_capture_is_deterministic(self, session, mini_workload):
        a = session.capture_frame(mini_workload, 1)
        b = session.capture_frame(mini_workload, 1)
        assert np.array_equal(a.n, b.n)
        assert np.allclose(a.txds, b.txds)
        assert np.array_equal(a.af_lines, b.af_lines)


class TestEvaluate:
    def test_baseline_is_reference(self, session, capture):
        r = session.evaluate(capture, SCENARIOS["baseline"], 1.0)
        assert r.mssim == 1.0
        assert r.approximation_rate == 0.0
        assert r.events.trilinear_samples == int(capture.n.sum())

    def test_threshold_zero_equals_af_off(self, session, capture):
        r = session.evaluate(capture, SCENARIOS["afssim_n"], 0.0)
        assert r.approximation_rate == pytest.approx(
            float((capture.n > 1).mean())
        )
        assert r.events.trilinear_samples == capture.num_pixels

    def test_approximation_monotone_in_threshold(self, session, capture):
        rates = [
            session.evaluate(capture, SCENARIOS["patu"], t).approximation_rate
            for t in (0.0, 0.3, 0.6, 1.0)
        ]
        assert all(a >= b - 1e-12 for a, b in zip(rates, rates[1:]))
        assert rates[-1] == 0.0

    def test_stage2_adds_approximation(self, session, capture):
        n_only = session.evaluate(capture, SCENARIOS["afssim_n"], 0.4)
        combined = session.evaluate(capture, SCENARIOS["afssim_n_txds"], 0.4)
        assert combined.approximation_rate >= n_only.approximation_rate

    def test_quality_ordering_baseline_best(self, session, capture):
        patu = session.evaluate(capture, SCENARIOS["patu"], 0.4)
        off = session.evaluate(capture, SCENARIOS["afssim_n"], 0.0)
        assert 0.0 < off.mssim < 1.0
        assert patu.mssim > off.mssim

    def test_patu_saves_work(self, session, capture):
        base = session.evaluate(capture, SCENARIOS["baseline"], 1.0)
        patu = session.evaluate(capture, SCENARIOS["patu"], 0.4)
        assert patu.events.trilinear_samples < base.events.trilinear_samples
        assert patu.events.l1_accesses < base.events.l1_accesses
        assert patu.frame_cycles <= base.frame_cycles

    def test_fetch_stream_length_matches_events(self, session, capture):
        for name, threshold in (("baseline", 1.0), ("patu", 0.4)):
            r = session.evaluate(capture, SCENARIOS[name], threshold)
            assert r.events.l1_accesses == (
                r.events.trilinear_samples * TEXELS_PER_TRILINEAR
            )

    def test_store_image_flag(self, session, capture):
        r = session.evaluate(capture, SCENARIOS["patu"], 0.4, store_image=True)
        assert r.luminance is not None
        assert r.luminance.shape == (capture.height, capture.width)
        r2 = session.evaluate(capture, SCENARIOS["patu"], 0.4)
        assert r2.luminance is None

    def test_hash_insertions_only_for_stage2_scenarios(self, session, capture):
        n_only = session.evaluate(capture, SCENARIOS["afssim_n"], 0.4)
        patu = session.evaluate(capture, SCENARIOS["patu"], 0.4)
        assert n_only.events.hash_insertions == 0
        assert patu.events.hash_insertions > 0


class TestCacheScaling:
    def test_session_scales_l2_with_render_scale(self):
        s = RenderSession(GpuConfig(), scale=0.25)
        assert s.config.texture_l2.size_bytes == 128 * 1024 // 16
        assert s.config.texture_l1.size_bytes == 16 * 1024  # L1 untouched

    def test_scaling_can_be_disabled(self):
        s = RenderSession(GpuConfig(), scale=0.25, scale_caches=False)
        assert s.config.texture_l2.size_bytes == 128 * 1024

    def test_full_scale_never_scales(self):
        s = RenderSession(GpuConfig(), scale=1.0)
        assert s.config.texture_l2.size_bytes == 128 * 1024
