"""White-box tests for RenderSession's vectorized internals.

The fetch-stream assembly and quad-grouping helpers are the most
intricate vectorized code in the repository; these tests pin them
against straightforward per-pixel reference implementations.
"""

import numpy as np
import pytest

from repro.core.patu import FilterMode, PerceptionAwareTextureUnit
from repro.core.scenarios import SCENARIOS
from repro.renderer.session import _group_index, _group_mean
from repro.texture.unit import TEXELS_PER_TRILINEAR


class TestGroupHelpers:
    def test_group_index_distinguishes_pairs(self):
        primary = np.array([0, 0, 1, 1])
        secondary = np.array([0, 1, 0, 1])
        idx = _group_index(primary, secondary)
        assert len(set(idx.tolist())) == 4

    def test_group_index_same_pair_same_group(self):
        primary = np.array([3, 3, 5])
        secondary = np.array([2, 2, 2])
        idx = _group_index(primary, secondary)
        assert idx[0] == idx[1]
        assert idx[0] != idx[2]

    def test_group_mean_matches_manual(self):
        group = np.array([0, 0, 1, 1, 1])
        values = np.array([1.0, 3.0, 2.0, 4.0, 6.0])
        out = _group_mean(values, group)
        assert np.allclose(out, [2.0, 2.0, 4.0, 4.0, 4.0])

    def test_group_mean_single_groups_identity(self):
        values = np.array([5.0, 7.0, 9.0])
        out = _group_mean(values, np.arange(3))
        assert np.allclose(out, values)


class TestFetchStreamReference:
    """The assembled stream must equal the per-pixel concatenation."""

    def _reference_stream(self, capture, decision):
        segments = []
        for i in range(capture.num_pixels):
            if decision.mode[i] == FilterMode.AF:
                lo = capture.sample_row_ptr[i] * TEXELS_PER_TRILINEAR
                hi = capture.sample_row_ptr[i + 1] * TEXELS_PER_TRILINEAR
                segments.append(capture.af_lines[lo:hi])
            elif decision.mode[i] == FilterMode.TF_TF_LOD:
                segments.append(capture.tf_lines[i])
            else:
                segments.append(capture.tfa_lines[i])
        return np.concatenate(segments)

    @pytest.mark.parametrize(
        "scenario,threshold",
        [("baseline", 1.0), ("afssim_n", 0.0), ("afssim_n", 0.4),
         ("afssim_n_txds", 0.4), ("patu", 0.4), ("patu", 0.8)],
    )
    def test_stream_matches_reference(self, session, capture, scenario,
                                      threshold):
        device = PerceptionAwareTextureUnit(SCENARIOS[scenario], threshold)
        decision = device.decide(capture.n, capture.txds)
        lines, lengths = session._fetch_stream(capture, decision)
        expected = self._reference_stream(capture, decision)
        assert np.array_equal(lines, expected)
        assert lengths.sum() == expected.size

    def test_lengths_match_modes(self, session, capture):
        device = PerceptionAwareTextureUnit(SCENARIOS["patu"], 0.4)
        decision = device.decide(capture.n, capture.txds)
        _, lengths = session._fetch_stream(capture, decision)
        af = decision.mode == FilterMode.AF
        assert np.array_equal(
            lengths,
            np.where(af, capture.n * TEXELS_PER_TRILINEAR,
                     TEXELS_PER_TRILINEAR),
        )


class TestTileStreams:
    def test_hierarchy_sees_whole_stream(self, session, capture):
        device = PerceptionAwareTextureUnit(SCENARIOS["baseline"], 1.0)
        decision = device.decide(capture.n, capture.txds)
        lines, lengths = session._fetch_stream(capture, decision)
        hier = session._simulate_hierarchy(capture, lines, lengths)
        assert hier.l1.accesses == lines.size

    def test_unit_assignment_is_stable(self, session, capture):
        device = PerceptionAwareTextureUnit(SCENARIOS["baseline"], 1.0)
        decision = device.decide(capture.n, capture.txds)
        lines, lengths = session._fetch_stream(capture, decision)
        a = session._simulate_hierarchy(capture, lines, lengths)
        b = session._simulate_hierarchy(capture, lines, lengths)
        assert a.l1.hits == b.l1.hits
        assert a.dram.lines_fetched == b.dram.lines_fetched
