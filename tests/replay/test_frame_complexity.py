"""Tests for the per-frame complexity modulation."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.replay.vsync import (
    COMPLEXITY_SPREAD,
    SCENE_COMPLEXITY,
    frame_complexity,
)


class TestFrameComplexity:
    def test_deterministic(self):
        assert frame_complexity(7) == frame_complexity(7)

    def test_varies_across_frames(self):
        values = {frame_complexity(i) for i in range(10)}
        assert len(values) == 10

    def test_bounded_by_spread(self):
        lo = SCENE_COMPLEXITY * (1 - COMPLEXITY_SPREAD)
        hi = SCENE_COMPLEXITY * (1 + COMPLEXITY_SPREAD)
        for i in range(200):
            assert lo - 1e-9 <= frame_complexity(i) <= hi + 1e-9

    def test_mean_near_base(self):
        # The golden-ratio sequence is equidistributed: long-run mean
        # converges to the base complexity.
        values = [frame_complexity(i) for i in range(500)]
        assert np.mean(values) == pytest.approx(SCENE_COMPLEXITY, rel=0.02)

    def test_identical_across_design_points(self):
        # The modulation is a pure function of the frame index, so two
        # design points replaying the same frames share it exactly —
        # per-frame ratios stay untouched.
        a = [frame_complexity(i, base=2.0) for i in range(8)]
        b = [frame_complexity(i, base=4.0) for i in range(8)]
        assert np.allclose(np.asarray(b) / np.asarray(a), 2.0)

    def test_zero_spread_is_constant(self):
        assert frame_complexity(3, spread=0.0) == SCENE_COMPLEXITY

    def test_validation(self):
        with pytest.raises(ReproError):
            frame_complexity(0, spread=1.5)
