"""Tests for the vsync replay model."""

import pytest

from repro.config import CPU_LATENCY_CYCLES, REFRESH_INTERVAL_CYCLES
from repro.errors import ReproError
from repro.replay.vsync import VsyncSimulator, nominal_frame_cycles


class TestNominalScaling:
    def test_identity_at_full_scale_unit_complexity(self):
        assert nominal_frame_cycles(1000.0, 1.0, complexity=1.0) == 1000.0

    def test_quarter_scale_is_sixteen_x(self):
        assert nominal_frame_cycles(1000.0, 0.25, complexity=1.0) == pytest.approx(
            16_000.0
        )

    def test_complexity_multiplies(self):
        assert nominal_frame_cycles(1000.0, 1.0, complexity=3.0) == 3000.0

    def test_validation(self):
        with pytest.raises(ReproError):
            nominal_frame_cycles(1000.0, 0.0)
        with pytest.raises(ReproError):
            nominal_frame_cycles(1000.0, 0.5, complexity=0.0)


class TestVsync:
    def test_fast_frames_cap_at_60fps(self):
        sim = VsyncSimulator()
        stats = sim.replay([1_000_000.0] * 10)  # 1 ms GPU work per frame
        assert stats.average_fps == pytest.approx(60.0, rel=1e-6)
        assert stats.lag_fraction == 0.0

    def test_slow_frames_halve_the_rate(self):
        sim = VsyncSimulator()
        # CPU (8.3M) + GPU (12M) > one refresh interval -> 2 intervals.
        stats = sim.replay([12_000_000.0] * 10)
        assert stats.average_fps == pytest.approx(30.0, rel=1e-6)
        assert stats.lag_fraction == 1.0

    def test_mixed_sequence(self):
        sim = VsyncSimulator()
        stats = sim.replay([1_000_000.0, 12_000_000.0])
        assert stats.lag_fraction == pytest.approx(0.5)
        assert stats.min_fps == pytest.approx(30.0, rel=1e-6)
        assert stats.max_fps == pytest.approx(60.0, rel=1e-6)

    def test_cpu_latency_counts_against_budget(self):
        sim = VsyncSimulator()
        # GPU work just below one interval, but CPU latency pushes it over.
        cycles = REFRESH_INTERVAL_CYCLES - CPU_LATENCY_CYCLES + 1000
        stats = sim.replay([float(cycles)])
        assert stats.lag_fraction == 1.0

    def test_fps_monotone_in_frame_time(self):
        sim = VsyncSimulator()
        fast = sim.replay([5_000_000.0] * 5)
        slow = sim.replay([50_000_000.0] * 5)
        assert fast.average_fps > slow.average_fps

    def test_validation(self):
        sim = VsyncSimulator()
        with pytest.raises(ReproError):
            sim.replay([])
        with pytest.raises(ReproError):
            sim.replay([0.0])
        with pytest.raises(ReproError):
            VsyncSimulator(refresh_cycles=0)
