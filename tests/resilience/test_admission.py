"""Tests for the service's admission controller (bounded queueing)."""

import pytest

from repro.errors import AdmissionError
from repro.obs import TELEMETRY
from repro.resilience.admission import AdmissionController


class TestAdmission:
    def test_acquire_release_tracks_depth(self):
        gate = AdmissionController(2)
        gate.acquire()
        gate.acquire()
        assert gate.depth == 2 and gate.peak_depth == 2
        gate.release()
        assert gate.depth == 1

    def test_overflow_rejects_immediately(self):
        gate = AdmissionController(1, retry_after_s=0.75)
        gate.acquire()
        with pytest.raises(AdmissionError) as info:
            gate.acquire()
        assert info.value.status == 429
        assert info.value.retry_after_s == 0.75
        assert gate.rejected == 1
        assert gate.depth == 1  # the rejected request holds no slot

    def test_rejections_count_into_resilience_rollup(self):
        TELEMETRY.reset()
        TELEMETRY.enabled = True
        try:
            gate = AdmissionController(1)
            gate.acquire()
            with pytest.raises(AdmissionError):
                gate.acquire()
            assert TELEMETRY.counter_value(
                "resilience.admission_rejections"
            ) == 1
        finally:
            TELEMETRY.enabled = False

    def test_release_after_rejection_reopens_the_gate(self):
        gate = AdmissionController(1)
        gate.acquire()
        with pytest.raises(AdmissionError):
            gate.acquire()
        gate.release()
        gate.acquire()  # does not raise
        assert gate.depth == 1

    def test_admit_context_manager(self):
        gate = AdmissionController(1)
        with gate.admit():
            assert gate.depth == 1
        assert gate.depth == 0

    def test_peak_depth_survives_release(self):
        gate = AdmissionController(4)
        for _ in range(3):
            gate.acquire()
        for _ in range(3):
            gate.release()
        assert gate.depth == 0 and gate.peak_depth == 3

    @pytest.mark.parametrize("bad", [0, -1])
    def test_nonpositive_capacity_rejected(self, bad):
        with pytest.raises(AdmissionError):
            AdmissionController(bad)
