"""Checkpoint format: round-trip, validation, corruption handling."""

from __future__ import annotations

import json

import pytest

from repro.errors import CheckpointError
from repro.experiments.runner import ExperimentContext
from repro.resilience.checkpoint import (
    SCHEMA_VERSION,
    load_checkpoint,
    save_checkpoint,
)

FP = {"scale": 0.25, "frames": 2, "config": "GpuConfig(test)"}

# Keys use the schema-2 layout: EvalJob.metrics_key() — (workload,
# frame, scenario, threshold, llc, tc, stage2, hash_entries,
# max_aniso, compressed, software).
METRICS = {
    ("wolf-640x480", 0, "patu", 0.4, 1, 1, None, 16, None, False, False):
        {"mssim": 0.93, "cycles": 1200.0},
    ("wolf-640x480", 0, "baseline", 1.0, 1, 1, None, 16, None, False, False):
        {"mssim": 1.0, "cycles": 1500.0},
}


def test_round_trip(tmp_path):
    path = tmp_path / "cp.json"
    save_checkpoint(path, fingerprint=FP, metrics=METRICS)
    assert load_checkpoint(path, fingerprint=FP) == METRICS


def test_save_overwrites_atomically(tmp_path):
    path = tmp_path / "cp.json"
    save_checkpoint(path, fingerprint=FP, metrics={})
    save_checkpoint(path, fingerprint=FP, metrics=METRICS)
    assert load_checkpoint(path, fingerprint=FP) == METRICS
    leftovers = [p for p in tmp_path.iterdir() if p.name != "cp.json"]
    assert leftovers == []


def test_missing_file_raises(tmp_path):
    with pytest.raises(CheckpointError, match="cannot read"):
        load_checkpoint(tmp_path / "absent.json", fingerprint=FP)


def test_corrupt_json_raises(tmp_path):
    path = tmp_path / "cp.json"
    path.write_text('{"schema": 1, "entr')
    with pytest.raises(CheckpointError, match="corrupt"):
        load_checkpoint(path, fingerprint=FP)


def test_schema_mismatch_raises(tmp_path):
    path = tmp_path / "cp.json"
    save_checkpoint(path, fingerprint=FP, metrics=METRICS)
    document = json.loads(path.read_text())
    document["schema"] = SCHEMA_VERSION + 1
    path.write_text(json.dumps(document))
    with pytest.raises(CheckpointError, match="schema"):
        load_checkpoint(path, fingerprint=FP)


def test_fingerprint_mismatch_raises(tmp_path):
    path = tmp_path / "cp.json"
    save_checkpoint(path, fingerprint=FP, metrics=METRICS)
    other = dict(FP, scale=0.5)
    with pytest.raises(CheckpointError, match="incompatible"):
        load_checkpoint(path, fingerprint=other)


def test_malformed_entry_raises(tmp_path):
    path = tmp_path / "cp.json"
    document = {
        "schema": SCHEMA_VERSION,
        "fingerprint": FP,
        "entries": [{"key": ["too", "short"], "metrics": {}}],
    }
    path.write_text(json.dumps(document))
    with pytest.raises(CheckpointError, match="malformed"):
        load_checkpoint(path, fingerprint=FP)


def test_context_treats_missing_checkpoint_as_clean_start(tmp_path):
    ctx = ExperimentContext(
        scale=0.125, frames=1, workloads=("wolf-640x480",),
        checkpoint_path=tmp_path / "absent.json",
    )
    assert ctx.load_checkpoint() == 0


def test_context_without_path_saves_nothing(tmp_path):
    ctx = ExperimentContext(
        scale=0.125, frames=1, workloads=("wolf-640x480",)
    )
    assert ctx.save_checkpoint() is None
