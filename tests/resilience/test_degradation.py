"""Graceful degradation: sanitize, fall back to exact AF, stay finite."""

from __future__ import annotations

import numpy as np

from repro.config import GpuConfig
from repro.core.patu import FilterMode, PerceptionAwareTextureUnit
from repro.core.predictor import TwoStagePredictor
from repro.core.scenarios import get_scenario
from repro.renderer.session import RenderSession
from repro.resilience import FAULTS, FaultPlan
from repro.resilience.guards import (
    safe_anisotropy,
    safe_txds,
    sanitize_colors,
)


def test_sanitize_colors_clean_path_is_identity():
    colors = np.ones((4, 4))
    result = sanitize_colors(colors)
    assert result.value is colors
    assert not result.is_degraded


def test_sanitize_colors_zeroes_nonfinite_components():
    colors = np.array([[1.0, np.nan], [np.inf, 2.0]])
    result = sanitize_colors(colors)
    assert result.is_degraded
    assert result.degraded == 2
    assert result.reason == "nonfinite_color"
    np.testing.assert_array_equal(result.value, [[1.0, 0.0], [0.0, 2.0]])


def test_safe_anisotropy_clamps_and_flags():
    n = np.array([1, 4, 0, 40, 16], dtype=np.int64)
    safe, invalid = safe_anisotropy(n)
    np.testing.assert_array_equal(invalid, [False, False, True, True, False])
    np.testing.assert_array_equal(safe, [1, 4, 1, 16, 16])
    assert safe.dtype == n.dtype


def test_safe_anisotropy_preserves_valid_float_degrees():
    n = np.array([np.nan, 2.5, np.inf])
    safe, invalid = safe_anisotropy(n)
    np.testing.assert_array_equal(invalid, [True, False, True])
    assert safe[1] == 2.5
    assert np.isfinite(safe).all()
    assert ((safe >= 1) & (safe <= 16)).all()


def test_safe_txds_invalid_entries_become_most_conservative():
    txds = np.array([0.5, np.nan, -1.0, 2.0, 1.0])
    safe, invalid = safe_txds(txds)
    np.testing.assert_array_equal(invalid, [False, True, True, True, False])
    np.testing.assert_array_equal(safe, [0.5, 0.0, 0.0, 0.0, 1.0])


def test_predictor_marks_corrupt_state_degraded_never_nan():
    predictor = TwoStagePredictor(get_scenario("patu"), 0.4)
    n = np.array([1, 2, 0, 99, 4], dtype=np.int64)
    txds = np.array([0.9, np.nan, 0.5, 0.5, 5.0])
    result = predictor.predict(n, txds)
    np.testing.assert_array_equal(
        result.degraded, [False, True, True, True, True]
    )
    assert result.degraded_count == 4
    assert not result.approximated[result.degraded].any()
    assert np.isfinite(result.predicted_n).all()
    assert np.isfinite(result.predicted_txds).all()


def test_degraded_pixel_is_never_approximated_even_when_similar():
    # Txds 0.99 would normally approximate at threshold 0.4; the
    # invalid count tag must veto it (fallback to exact AF).
    predictor = TwoStagePredictor(get_scenario("patu"), 0.4)
    n = np.array([0], dtype=np.int64)
    txds = np.array([0.99])
    result = predictor.predict(n, txds)
    assert result.degraded.all()
    assert not result.approximated.any()


def test_patu_routes_degraded_pixels_to_exact_af():
    device = PerceptionAwareTextureUnit(get_scenario("patu"), 0.4)
    n = np.array([8, 0, 8, 33], dtype=np.int64)
    txds = np.array([0.2, 0.2, np.inf, 0.2])
    decision = device.decide(n, txds)
    degraded = decision.prediction.degraded
    np.testing.assert_array_equal(degraded, [False, True, True, True])
    assert (decision.mode[degraded] == FilterMode.AF).all()
    assert decision.to_dict()["degraded_pixels"] == 3


def test_faulted_frame_still_produces_finite_metrics(mini_workload):
    session = RenderSession(GpuConfig(), scale=1.0, scale_caches=False)
    FAULTS.configure(FaultPlan.uniform(0.01, seed=5))
    capture = session.capture_frame(mini_workload, 0)
    result = session.evaluate(capture, get_scenario("patu"), 0.4)
    assert FAULTS.total_injected > 0
    assert np.isfinite(result.mssim)
    assert 0.0 <= result.mssim <= 1.0
    assert np.isfinite(result.approximation_rate)
    assert result.degraded_pixels > 0
