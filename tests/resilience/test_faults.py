"""Unit tests for the deterministic fault-injection harness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import FaultInjectionError
from repro.resilience import FaultInjector, FaultPlan


def _armed(rate: float = 0.5, seed: int = 11) -> FaultInjector:
    injector = FaultInjector()
    injector.configure(FaultPlan.uniform(rate, seed=seed))
    return injector


def test_plan_rejects_out_of_range_rates():
    with pytest.raises(FaultInjectionError):
        FaultPlan(texel_rate=1.5)
    with pytest.raises(FaultInjectionError):
        FaultPlan(drop_rate=-0.1)


def test_uniform_plan_sets_every_category():
    plan = FaultPlan.uniform(0.25, seed=3)
    assert plan.seed == 3
    assert plan.texel_rate == plan.hash_rate == 0.25
    assert plan.count_tag_rate == plan.drop_rate == 0.25
    assert plan.any_faults


def test_all_zero_plan_keeps_injector_disabled():
    injector = FaultInjector()
    injector.configure(FaultPlan(seed=9))
    assert not injector.enabled
    assert not FaultPlan().any_faults


def test_disabled_injector_is_identity():
    injector = FaultInjector()
    colors = np.ones((8, 4))
    n = np.full(16, 4, dtype=np.int64)
    txds = np.full(16, 0.5)
    lines = np.arange(32, dtype=np.int64)
    assert injector.corrupt_colors(colors, "s") is colors
    assert injector.corrupt_n(n, "s") is n
    assert injector.corrupt_txds(txds, "s") is txds
    assert injector.drop_lines(lines, "s") is lines
    assert injector.total_injected == 0


def test_injection_never_mutates_the_input():
    injector = _armed(1.0)
    colors = np.arange(64, dtype=np.float64).reshape(16, 4)
    before = colors.copy()
    out = injector.corrupt_colors(colors, "site")
    np.testing.assert_array_equal(colors, before)
    assert out is not colors


def test_same_seed_same_site_sequence_is_reproducible():
    colors = np.arange(64, dtype=np.float64).reshape(16, 4)
    runs = []
    for _ in range(2):
        injector = _armed(0.5, seed=11)
        runs.append(
            [injector.corrupt_colors(colors, "site") for _ in range(3)]
        )
    for first, second in zip(*runs):
        np.testing.assert_array_equal(first, second)


def test_different_seeds_corrupt_different_elements():
    colors = np.zeros(256)
    out_a = _armed(0.3, seed=1).corrupt_colors(colors, "site")
    out_b = _armed(0.3, seed=2).corrupt_colors(colors, "site")
    assert not np.array_equal(
        np.isfinite(out_a), np.isfinite(out_b)
    )


def test_call_index_advances_the_pattern():
    injector = _armed(0.3, seed=4)
    colors = np.zeros(256)
    first = injector.corrupt_colors(colors, "site")
    second = injector.corrupt_colors(colors, "site")
    assert not np.array_equal(np.isfinite(first), np.isfinite(second))


def test_corrupt_n_flips_one_low_bit():
    injector = _armed(0.5, seed=7)
    n = np.full(256, 8, dtype=np.int64)
    out = injector.corrupt_n(n, "site")
    changed = out != 8
    assert changed.any()
    flipped_bits = out[changed] ^ 8
    # exactly one of the low 5 bits differs
    assert np.all(flipped_bits > 0)
    assert np.all(flipped_bits < 32)
    assert np.all((flipped_bits & (flipped_bits - 1)) == 0)


def test_corrupt_txds_produces_out_of_domain_values():
    injector = _armed(1.0, seed=2)
    txds = np.full(64, 0.5)
    out = injector.corrupt_txds(txds, "site")
    invalid = ~np.isfinite(out) | (out < 0.0) | (out > 1.0)
    assert invalid.all()


def test_drop_lines_reserves_previous_line():
    injector = _armed(0.5, seed=6)
    lines = np.arange(100, dtype=np.int64)
    out = injector.drop_lines(lines, "site")
    assert out.shape == lines.shape
    changed = out != lines
    assert changed.any()
    idx = np.nonzero(changed)[0]
    np.testing.assert_array_equal(out[idx], lines[idx - 1])


def test_injected_tally_and_reset():
    injector = _armed(1.0, seed=0)
    injector.corrupt_colors(np.zeros(10), "a")
    injector.corrupt_n(np.full(10, 4, dtype=np.int64), "b")
    assert injector.total_injected == 20
    assert set(injector.injected) == {"a", "b"}
    injector.reset()
    assert not injector.enabled
    assert injector.total_injected == 0


class TestProcessChaos:
    def test_uniform_plan_leaves_chaos_off(self):
        plan = FaultPlan.uniform(0.5, seed=7)
        assert plan.worker_kill_rate == 0.0
        assert plan.worker_hang_rate == 0.0
        assert plan.chunk_corrupt_rate == 0.0

    def test_with_chaos_sets_only_chaos_rates(self):
        plan = FaultPlan.uniform(0.25, seed=7).with_chaos(
            kill=0.1, hang=0.2, corrupt=0.3
        )
        assert plan.texel_rate == 0.25  # data rates untouched
        assert (plan.worker_kill_rate, plan.worker_hang_rate,
                plan.chunk_corrupt_rate) == (0.1, 0.2, 0.3)
        assert plan.any_faults

    def test_chaos_rates_are_validated(self):
        with pytest.raises(FaultInjectionError):
            FaultPlan(worker_kill_rate=1.5)
        with pytest.raises(FaultInjectionError):
            FaultPlan(chunk_corrupt_rate=-0.1)

    def test_chaos_only_plan_arms_the_injector(self):
        injector = FaultInjector()
        injector.configure(FaultPlan(seed=1).with_chaos(kill=0.5))
        assert injector.enabled

    def test_decisions_agree_across_injector_instances(self):
        """The parent's seed scan and the pool worker's runtime check
        must reach the same verdict for every job identity — chaos
        marks are per identity, never per process."""
        plan = FaultPlan(seed=13).with_chaos(kill=0.4, hang=0.4)
        a, b = FaultInjector(), FaultInjector()
        a.configure(plan)
        b.configure(plan)
        identities = [f"eval|wolf|f{i}|patu|t0.4|cfg" for i in range(64)]
        assert ([a.should_kill_worker(x) for x in identities]
                == [b.should_kill_worker(x) for x in identities])
        assert ([a.should_hang_worker(x) for x in identities]
                == [b.should_hang_worker(x) for x in identities])

    def test_decisions_are_stable_across_repeated_calls(self):
        injector = FaultInjector()
        injector.configure(FaultPlan(seed=3).with_chaos(kill=0.5))
        verdicts = {injector.should_kill_worker("job-a") for _ in range(10)}
        assert len(verdicts) == 1  # no call-counter drift

    def test_sites_are_independent(self):
        injector = FaultInjector()
        injector.configure(FaultPlan(seed=5).with_chaos(kill=1.0))
        assert injector.should_kill_worker("job-a")
        assert not injector.should_hang_worker("job-a")  # rate 0

    def test_disabled_injector_never_marks(self):
        injector = FaultInjector()
        assert not injector.should_kill_worker("job-a")
        outcomes = [("ok", {}, None, None, (0, 0, 0, 0))]
        assert injector.corrupt_chunk_payload(outcomes, "job-a") is outcomes

    def test_payload_corruption_changes_shape_or_tag(self):
        injector = FaultInjector()
        injector.configure(FaultPlan(seed=2).with_chaos(corrupt=1.0))
        outcomes = [
            ("ok", {"a": 1.0}, None, None, (0, 0, 0, 0)),
            ("ok", {"b": 2.0}, None, None, (0, 0, 0, 0)),
        ]
        mangled = injector.corrupt_chunk_payload(list(outcomes), "job-a")
        truncated = len(mangled) == len(outcomes) - 1
        garbled = len(mangled) == len(outcomes) and mangled[0][0] == "garbage"
        assert truncated or garbled
