"""Atomic artifact writes: replace semantics and bounded retry."""

from __future__ import annotations

import os

import pytest

from repro.ioutil import atomic_write_bytes, atomic_write_text


def test_writes_and_returns_path(tmp_path):
    path = tmp_path / "artifact.txt"
    returned = atomic_write_text(path, "hello")
    assert returned == path
    assert path.read_text() == "hello"


def test_overwrites_existing_file(tmp_path):
    path = tmp_path / "artifact.txt"
    atomic_write_text(path, "old")
    atomic_write_text(path, "new")
    assert path.read_text() == "new"


def test_leaves_no_temp_files(tmp_path):
    path = tmp_path / "artifact.txt"
    atomic_write_text(path, "x" * 4096)
    assert [p.name for p in tmp_path.iterdir()] == ["artifact.txt"]


def test_bytes_variant(tmp_path):
    path = tmp_path / "blob.bin"
    atomic_write_bytes(path, b"\x00\xff")
    assert path.read_bytes() == b"\x00\xff"


def test_retries_transient_oserror(tmp_path, monkeypatch):
    calls = {"n": 0}
    real_replace = os.replace

    def flaky(src, dst):
        calls["n"] += 1
        if calls["n"] == 1:
            raise OSError("transient")
        return real_replace(src, dst)

    monkeypatch.setattr(os, "replace", flaky)
    path = tmp_path / "artifact.txt"
    atomic_write_text(path, "hello", backoff_s=0.0)
    assert calls["n"] == 2
    assert path.read_text() == "hello"


def test_raises_after_exhausted_retries(tmp_path, monkeypatch):
    def always_fails(src, dst):
        raise OSError("persistent")

    monkeypatch.setattr(os, "replace", always_fails)
    path = tmp_path / "artifact.txt"
    with pytest.raises(OSError, match="persistent"):
        atomic_write_text(path, "hello", retries=2, backoff_s=0.0)
    # nothing written, temp files cleaned up
    assert list(tmp_path.iterdir()) == []


def test_old_content_survives_failed_replace(tmp_path, monkeypatch):
    path = tmp_path / "artifact.txt"
    atomic_write_text(path, "old")

    def always_fails(src, dst):
        raise OSError("persistent")

    monkeypatch.setattr(os, "replace", always_fails)
    with pytest.raises(OSError):
        atomic_write_text(path, "new", retries=2, backoff_s=0.0)
    assert path.read_text() == "old"
