"""Atomic artifact writes: replace semantics and bounded retry."""

from __future__ import annotations

import errno
import os

import pytest

from repro.ioutil import (
    atomic_append_text,
    atomic_write_bytes,
    atomic_write_text,
)


def test_writes_and_returns_path(tmp_path):
    path = tmp_path / "artifact.txt"
    returned = atomic_write_text(path, "hello")
    assert returned == path
    assert path.read_text() == "hello"


def test_overwrites_existing_file(tmp_path):
    path = tmp_path / "artifact.txt"
    atomic_write_text(path, "old")
    atomic_write_text(path, "new")
    assert path.read_text() == "new"


def test_leaves_no_temp_files(tmp_path):
    path = tmp_path / "artifact.txt"
    atomic_write_text(path, "x" * 4096)
    assert [p.name for p in tmp_path.iterdir()] == ["artifact.txt"]


def test_bytes_variant(tmp_path):
    path = tmp_path / "blob.bin"
    atomic_write_bytes(path, b"\x00\xff")
    assert path.read_bytes() == b"\x00\xff"


def test_retries_transient_oserror(tmp_path, monkeypatch):
    calls = {"n": 0}
    real_replace = os.replace

    def flaky(src, dst):
        calls["n"] += 1
        if calls["n"] == 1:
            raise OSError("transient")
        return real_replace(src, dst)

    monkeypatch.setattr(os, "replace", flaky)
    path = tmp_path / "artifact.txt"
    atomic_write_text(path, "hello", backoff_s=0.0)
    assert calls["n"] == 2
    assert path.read_text() == "hello"


def test_raises_after_exhausted_retries(tmp_path, monkeypatch):
    def always_fails(src, dst):
        raise OSError("persistent")

    monkeypatch.setattr(os, "replace", always_fails)
    path = tmp_path / "artifact.txt"
    with pytest.raises(OSError, match="persistent"):
        atomic_write_text(path, "hello", retries=2, backoff_s=0.0)
    # nothing written, temp files cleaned up
    assert list(tmp_path.iterdir()) == []


def test_old_content_survives_failed_replace(tmp_path, monkeypatch):
    path = tmp_path / "artifact.txt"
    atomic_write_text(path, "old")

    def always_fails(src, dst):
        raise OSError("persistent")

    monkeypatch.setattr(os, "replace", always_fails)
    with pytest.raises(OSError):
        atomic_write_text(path, "new", retries=2, backoff_s=0.0)
    assert path.read_text() == "old"


def test_append_accumulates(tmp_path):
    path = tmp_path / "ledger.jsonl"
    atomic_append_text(path, "one\n")
    atomic_append_text(path, "two\n")
    assert path.read_text() == "one\ntwo\n"


def test_append_on_full_disk_warns_instead_of_raising(
    tmp_path, monkeypatch, capsys
):
    """ENOSPC on a ledger append must not kill a finished run."""
    def disk_full(src, dst):
        raise OSError(errno.ENOSPC, "No space left on device")

    monkeypatch.setattr(os, "replace", disk_full)
    path = tmp_path / "ledger.jsonl"
    returned = atomic_append_text(path, "record\n", retries=2, backoff_s=0.0)
    assert returned == path
    err = capsys.readouterr().err
    assert "no space left on device" in err
    assert str(path) in err


def test_append_still_raises_other_oserrors(tmp_path, monkeypatch):
    def denied(src, dst):
        raise OSError(errno.EACCES, "Permission denied")

    monkeypatch.setattr(os, "replace", denied)
    with pytest.raises(OSError, match="Permission denied"):
        atomic_append_text(
            tmp_path / "ledger.jsonl", "record\n", retries=2, backoff_s=0.0
        )


def test_artifact_writes_still_raise_on_full_disk(tmp_path, monkeypatch):
    """Only *appends* degrade: a table that cannot be written is a
    failed run, not a warning."""
    def disk_full(src, dst):
        raise OSError(errno.ENOSPC, "No space left on device")

    monkeypatch.setattr(os, "replace", disk_full)
    with pytest.raises(OSError):
        atomic_write_text(
            tmp_path / "table.txt", "rows", retries=2, backoff_s=0.0
        )
