"""Tests for the JSON-lines service protocol: parse + envelope."""

import json

import pytest

from repro.engine.jobs import KIND_CAPTURE, KIND_EVAL, ConfigKey
from repro.errors import (
    AdmissionError,
    JobError,
    ProtocolError,
    WorkloadError,
)
from repro.service.protocol import (
    encode_response,
    error_response,
    ok_response,
    parse_request,
)


def _line(**payload) -> str:
    return json.dumps(payload)


class TestParseRequest:
    def test_eval_request_builds_job(self):
        request = parse_request(_line(
            id="r1", op="eval", workload="wolf-640x480", frame=2,
            scenario="afssim_n", threshold=0.3,
        ))
        job = request.job
        assert request.op == "eval" and request.id == "r1"
        assert job.kind == KIND_EVAL
        assert (job.workload, job.frame) == ("wolf-640x480", 2)
        assert (job.scenario, job.threshold) == ("afssim_n", 0.3)
        assert job.config_key == ConfigKey()

    def test_eval_defaults(self):
        job = parse_request(_line(
            id="r1", op="eval", workload="wolf-640x480",
        )).job
        assert (job.frame, job.scenario, job.threshold) == (0, "patu", 0.4)

    def test_render_request_is_a_capture_job(self):
        job = parse_request(_line(
            id="r1", op="render", workload="wolf-640x480",
        )).job
        assert job.kind == KIND_CAPTURE

    def test_config_fields_flow_into_key(self):
        job = parse_request(_line(
            id="r1", op="eval", workload="w",
            config={"tc_scale": 2.0, "compressed": True},
        )).job
        assert job.config_key.tc_scale == 2.0
        assert job.config_key.compressed is True

    def test_control_ops_carry_no_job(self):
        for op in ("ping", "stats", "shutdown"):
            request = parse_request(_line(id="r1", op=op))
            assert request.job is None

    def test_bytes_lines_accepted(self):
        request = parse_request(_line(id="r1", op="ping").encode())
        assert request.op == "ping"

    @pytest.mark.parametrize("line", [
        "not json",
        b"\xff\xfe",
        json.dumps(["a", "list"]),
        _line(op="ping"),                                 # no id
        _line(id="", op="ping"),                          # empty id
        _line(id="r1", op="explode"),                     # unknown op
        _line(id="r1", op="eval"),                        # no workload
        _line(id="r1", op="eval", workload=""),
        _line(id="r1", op="eval", workload="w", frame=-1),
        _line(id="r1", op="eval", workload="w", frame=True),
        _line(id="r1", op="eval", workload="w", threshold="hot"),
        _line(id="r1", op="eval", workload="w", scenario=7),
        _line(id="r1", op="eval", workload="w", config=["x"]),
        _line(id="r1", op="eval", workload="w", config={"bogus": 1}),
    ])
    def test_malformed_requests_raise_protocol_error(self, line):
        with pytest.raises(ProtocolError):
            parse_request(line)


class TestResponses:
    def test_encode_is_canonical(self):
        """Same payload -> same bytes, key order independent: the
        byte-identity contract of the service."""
        a = encode_response({"b": 1, "a": {"y": 2, "x": 3}})
        b = encode_response({"a": {"x": 3, "y": 2}, "b": 1})
        assert a == b
        assert a.endswith(b"\n")

    def test_ok_envelope(self):
        assert ok_response("r1", metrics={"m": 1}) == {
            "id": "r1", "ok": True, "metrics": {"m": 1},
        }

    def test_admission_maps_to_429_with_retry_hint(self):
        payload = error_response("r1", AdmissionError(
            "full", retry_after_s=0.25,
        ))
        assert payload["status"] == 429
        assert payload["retry_after_s"] == 0.25
        assert payload["ok"] is False

    def test_protocol_error_maps_to_400(self):
        assert error_response(None, ProtocolError("bad"))["status"] == 400

    def test_library_error_maps_to_404(self):
        assert error_response("r1", WorkloadError("unknown"))["status"] == 404

    def test_job_error_reports_original_type(self):
        """A replayed quarantined failure must be typed like its
        FailureRecord footer (WorkerCrashError), not like JobError."""
        error = JobError("WorkerCrashError", "quarantined after 2 attempt(s)")
        payload = error_response("r1", error)
        assert payload["status"] == 500
        assert payload["error"]["type"] == "WorkerCrashError"

    def test_unknown_exception_maps_to_500(self):
        payload = error_response("r1", RuntimeError("boom"))
        assert payload["status"] == 500
        assert payload["error"]["type"] == "RuntimeError"
