"""Tests for the render service: batching, dedup, admission, errors.

These run the real :class:`~repro.service.server.RenderService` on the
serial backend at a tiny scale — the asyncio front-end, the batcher
and the response paths are all exercised in-process, without worker
pools or subprocesses.
"""

import asyncio
import json

from repro.service.protocol import encode_response, parse_request
from repro.service.server import RenderService, ServeConfig

WORKLOAD = "wolf-640x480"
SCALE = 0.07


def _eval_line(request_id: str, threshold: float) -> str:
    return json.dumps({
        "id": request_id, "op": "eval", "workload": WORKLOAD,
        "frame": 0, "scenario": "patu", "threshold": threshold,
    })


async def _start_service(tmp_path, **overrides) -> RenderService:
    config = ServeConfig(
        scale=SCALE, jobs=1, store_root=str(tmp_path / "store"),
        **overrides,
    )
    service = RenderService(config)
    await service.start()
    return service


async def _request(reader, writer, payload: dict) -> "tuple[dict, bytes]":
    writer.write((json.dumps(payload) + "\n").encode())
    await writer.drain()
    raw = await reader.readline()
    return json.loads(raw), raw


class TestConcurrentDedup:
    def test_overlapping_lists_plan_shared_jobs_once(self, tmp_path):
        """Satellite invariant: two overlapping job lists submitted
        concurrently coalesce into a plan where every shared EvalJob
        appears exactly once, and every response is byte-identical to
        serial single-request execution."""
        list_a = [_eval_line(f"a{i}", t)
                  for i, t in enumerate([0.3, 0.4, 0.5])]
        list_b = [_eval_line(f"b{i}", t)
                  for i, t in enumerate([0.4, 0.5, 0.6])]
        requests = [parse_request(line) for line in list_a + list_b]
        unique = {r.job for r in requests}

        async def scenario():
            service = RenderService(ServeConfig(
                scale=SCALE, jobs=1,
                store_root=str(tmp_path / "store"),
            ))
            loop = asyncio.get_running_loop()
            # Enqueue both lists *before* the batcher starts: the whole
            # submission drains into one batch, deterministically.
            futures = [loop.create_future() for _ in requests]
            for request, future in zip(requests, futures):
                service._queue.put_nowait((request, future))
            await service.start()
            try:
                return await asyncio.gather(*futures)
            finally:
                await service.aclose()

        payloads = asyncio.run(scenario())

        # exactly one coalesced batch; each shared job planned once
        service_report_jobs = len(unique)
        # (report lives on the context the service executed on; assert
        # through the counters the batch recorded)
        assert len(payloads) == len(requests)
        assert all(p["ok"] for p in payloads)

        # serial single-request reference: a fresh service, one request
        # per batch, same ids -> responses must be byte-identical
        reference = RenderService(ServeConfig(
            scale=SCALE, jobs=1, store_root=str(tmp_path / "ref-store"),
        ))
        try:
            for request, payload in zip(requests, payloads):
                [ref_payload] = reference._execute_batch([request])
                assert encode_response(ref_payload) == \
                    encode_response(payload)
        finally:
            reference.ctx.close()
        assert service_report_jobs == 4  # 0.3 0.4 0.5 0.6

    def test_batch_counters_record_coalescing(self, tmp_path):
        list_a = [_eval_line(f"a{i}", t) for i, t in enumerate([0.3, 0.4])]
        list_b = [_eval_line(f"b{i}", t) for i, t in enumerate([0.4, 0.3])]
        requests = [parse_request(line) for line in list_a + list_b]

        async def scenario():
            service = RenderService(ServeConfig(
                scale=SCALE, jobs=1, store_root=str(tmp_path / "store"),
            ))
            loop = asyncio.get_running_loop()
            futures = [loop.create_future() for _ in requests]
            for request, future in zip(requests, futures):
                service._queue.put_nowait((request, future))
            await service.start()
            try:
                await asyncio.gather(*futures)
                report = service.ctx.engine.report
                return service.counters.snapshot(), report
            finally:
                await service.aclose()

        counters, report = asyncio.run(scenario())
        assert counters["batches"] == 1
        assert counters["coalesced_batches"] == 1
        assert counters["batched_requests"] == 4
        assert counters["coalesced_jobs"] == 2  # both duplicates deduped
        assert report.planned == 2  # the two unique design points
        assert report.executed == 2 and report.failed == 0

    def test_concurrent_socket_clients_get_identical_bytes(self, tmp_path):
        """The same overlap driven through real connections: responses
        for the same design point are byte-identical across clients."""

        async def scenario():
            service = await _start_service(tmp_path)
            host, port = service.address
            try:
                async def run_client(prefix: str, thresholds):
                    reader, writer = await asyncio.open_connection(
                        host, port
                    )
                    try:
                        out = {}
                        for i, threshold in enumerate(thresholds):
                            payload, raw = await _request(
                                reader, writer, json.loads(
                                    _eval_line(f"{prefix}{i}", threshold)
                                ),
                            )
                            assert payload["ok"], payload
                            out[threshold] = raw
                        return out
                    finally:
                        writer.close()
                        await writer.wait_closed()

                results = await asyncio.gather(
                    run_client("a", [0.3, 0.4, 0.5]),
                    run_client("b", [0.5, 0.4, 0.3]),
                )
                return results
            finally:
                await service.aclose()

        by_a, by_b = asyncio.run(scenario())

        def canonical(raw: bytes) -> bytes:
            payload = json.loads(raw)
            payload.pop("id")
            return encode_response(payload)

        for threshold in (0.3, 0.4, 0.5):
            assert canonical(by_a[threshold]) == canonical(by_b[threshold])


class TestFrontEnd:
    def test_ping_stats_render_and_errors(self, tmp_path):
        async def scenario():
            service = await _start_service(tmp_path)
            host, port = service.address
            reader, writer = await asyncio.open_connection(host, port)
            try:
                pong, _ = await _request(
                    reader, writer, {"id": "p", "op": "ping"},
                )
                assert pong["ok"] and pong["pong"] == 1

                # malformed line -> 400, connection survives
                writer.write(b"this is not json\n")
                await writer.drain()
                bad = json.loads(await reader.readline())
                assert bad["ok"] is False and bad["status"] == 400

                # unknown workload -> typed client error
                missing, _ = await _request(reader, writer, {
                    "id": "m", "op": "eval", "workload": "no-such-game",
                })
                assert missing["ok"] is False
                assert missing["status"] == 404
                assert missing["error"]["type"] == "WorkloadError"

                # render publishes into the sharded store
                rendered, _ = await _request(reader, writer, {
                    "id": "r", "op": "render", "workload": WORKLOAD,
                })
                assert rendered["ok"]
                assert len(rendered["capture"]["digest"]) == 16

                stats, _ = await _request(
                    reader, writer, {"id": "s", "op": "stats"},
                )
                payload = stats["stats"]
                assert payload["backend"] == "serial"
                assert payload["requests"] >= 4
                assert payload["store"]["writes"] >= 1
                assert "shards" in payload
            finally:
                writer.close()
                await writer.wait_closed()
                await service.aclose()

        asyncio.run(scenario())

    def test_admission_overflow_rejects_with_429(self, tmp_path):
        async def scenario():
            service = await _start_service(tmp_path, max_pending=1)
            host, port = service.address
            service.admission.acquire()  # the only slot is taken
            reader, writer = await asyncio.open_connection(host, port)
            try:
                rejected, _ = await _request(reader, writer, json.loads(
                    _eval_line("r", 0.4)
                ))
                assert rejected["ok"] is False
                assert rejected["status"] == 429
                assert rejected["retry_after_s"] > 0
                assert service.counters.rejected == 1

                service.admission.release()
                admitted, _ = await _request(reader, writer, json.loads(
                    _eval_line("r2", 0.4)
                ))
                assert admitted["ok"], admitted
            finally:
                writer.close()
                await writer.wait_closed()
                await service.aclose()

        asyncio.run(scenario())

    def test_shutdown_op_stops_the_server(self, tmp_path):
        async def scenario():
            service = await _start_service(tmp_path)
            host, port = service.address
            reader, writer = await asyncio.open_connection(host, port)
            try:
                done, _ = await _request(
                    reader, writer, {"id": "x", "op": "shutdown"},
                )
                assert done["ok"] and done["stopping"] is True
                assert service._stopping.is_set()
            finally:
                writer.close()
                await writer.wait_closed()
                await service.aclose()

        asyncio.run(scenario())
