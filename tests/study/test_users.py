"""Tests for the simulated user study."""

import pytest

from repro.errors import ReproError
from repro.study.users import Participant, UserStudy


class TestParticipant:
    def _p(self, wq=20.0, wp=5.0, jnd=0.02):
        return Participant(
            ident=0, quality_weight=wq, performance_weight=wp, quality_jnd=jnd
        )

    def test_perfect_replay_scores_five(self):
        assert self._p().score(1.0, 60.0, 0.0) == 5.0

    def test_loss_below_jnd_is_free(self):
        p = self._p(jnd=0.05)
        assert p.score(0.96, 60.0, 0.0) == 5.0

    def test_quality_loss_reduces_score(self):
        p = self._p()
        assert p.score(0.7, 60.0, 0.0) < p.score(0.95, 60.0, 0.0)

    def test_low_fps_reduces_score(self):
        p = self._p()
        assert p.score(1.0, 20.0, 0.5) < p.score(1.0, 60.0, 0.0)

    def test_score_clipped_to_range(self):
        p = self._p(wq=100.0, wp=100.0)
        assert p.score(0.0, 1.0, 1.0) == 1.0

    def test_validation(self):
        p = self._p()
        with pytest.raises(ReproError):
            p.score(1.5, 60.0, 0.0)
        with pytest.raises(ReproError):
            p.score(0.9, 0.0, 0.0)


class TestUserStudy:
    def test_population_size_and_determinism(self):
        a = UserStudy(num_participants=30, seed=7)
        b = UserStudy(num_participants=30, seed=7)
        assert len(a.participants) == 30
        r1 = a.evaluate(0.9, 45.0, 0.2)
        r2 = b.evaluate(0.9, 45.0, 0.2)
        assert r1.scores == r2.scores

    def test_seed_changes_population(self):
        a = UserStudy(seed=1).evaluate(0.85, 40.0, 0.3)
        b = UserStudy(seed=2).evaluate(0.85, 40.0, 0.3)
        assert a.scores != b.scores

    def test_population_is_heterogeneous(self):
        study = UserStudy()
        result = study.evaluate(0.85, 30.0, 0.5)
        assert result.std_score > 0.05

    def test_mean_prefers_balanced_replay(self):
        study = UserStudy()
        # Typical Fig. 22 situation: mid threshold = good quality AND
        # good fps beats both extremes.
        no_af = study.evaluate(0.80, 58.0, 0.05)  # threshold 0
        balanced = study.evaluate(0.96, 52.0, 0.15)  # threshold ~0.4
        baseline = study.evaluate(1.00, 33.0, 0.8)  # threshold 1
        assert balanced.mean_score > no_af.mean_score
        assert balanced.mean_score > baseline.mean_score

    def test_rejects_empty_population(self):
        with pytest.raises(ReproError):
            UserStudy(num_participants=0)
