"""Tests for the command-line interface."""


import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list_command_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_experiment_defaults(self):
        args = build_parser().parse_args(["experiment", "fig19"])
        assert args.id == "fig19"
        assert args.scale == 0.25
        assert args.frames == 2

    def test_render_scenario_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["render", "wolf-640x480",
                                       "--scenario", "bogus"])


class TestCommands:
    def test_list_runs(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "HL2-1600x1200" in out
        assert "fig19" in out

    def test_unknown_experiment_fails_cleanly(self, capsys):
        assert main(["experiment", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_experiment_static_table(self, capsys, tmp_path):
        out_file = tmp_path / "t1.txt"
        assert main(["experiment", "table1", "--out", str(out_file)]) == 0
        assert "Frequency" in out_file.read_text()

    def test_compare_runs_small(self, capsys):
        assert main(["compare", "wolf-640x480", "--scale", "0.07"]) == 0
        out = capsys.readouterr().out
        assert "PATU" in out and "Baseline" in out

    def test_render_writes_images(self, tmp_path, capsys):
        out_dir = tmp_path / "render"
        assert main([
            "render", "wolf-640x480", "--scale", "0.07",
            "--out", str(out_dir),
        ]) == 0
        assert (out_dir / "frame.ppm").exists()
        assert (out_dir / "baseline_luminance.pgm").exists()
        assert (out_dir / "ssim_map.pgm").exists()

    def test_repro_error_maps_to_exit_1(self, capsys):
        assert main(["compare", "nonexistent-0x0"]) == 1
        assert "error:" in capsys.readouterr().err
