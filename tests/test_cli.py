"""Tests for the command-line interface."""


import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list_command_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_experiment_defaults(self):
        args = build_parser().parse_args(["experiment", "fig19"])
        assert args.id == "fig19"
        assert args.scale == 0.25
        assert args.frames == 2

    def test_render_scenario_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["render", "wolf-640x480",
                                       "--scenario", "bogus"])


class TestCommands:
    def test_list_runs(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "HL2-1600x1200" in out
        assert "fig19" in out

    def test_unknown_experiment_fails_cleanly(self, capsys):
        assert main(["experiment", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_experiment_static_table(self, capsys, tmp_path):
        out_file = tmp_path / "t1.txt"
        assert main(["experiment", "table1", "--out", str(out_file)]) == 0
        assert "Frequency" in out_file.read_text()

    def test_compare_runs_small(self, capsys):
        assert main(["compare", "wolf-640x480", "--scale", "0.07"]) == 0
        out = capsys.readouterr().out
        assert "PATU" in out and "Baseline" in out

    def test_render_writes_images(self, tmp_path, capsys):
        out_dir = tmp_path / "render"
        assert main([
            "render", "wolf-640x480", "--scale", "0.07",
            "--out", str(out_dir),
        ]) == 0
        assert (out_dir / "frame.ppm").exists()
        assert (out_dir / "baseline_luminance.pgm").exists()
        assert (out_dir / "ssim_map.pgm").exists()

    def test_repro_error_maps_to_exit_1(self, capsys):
        assert main(["compare", "nonexistent-0x0"]) == 1
        assert "error:" in capsys.readouterr().err


class TestServeWorkerParser:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.port == 7070
        assert args.backend is None
        assert args.store_prefix == 1
        assert args.max_batch == 64

    def test_serve_backend_choices(self):
        args = build_parser().parse_args(["serve", "--backend", "remote"])
        assert args.backend == "remote"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--backend", "bogus"])

    def test_worker_requires_connect(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["worker"])

    def test_worker_rejects_malformed_connect(self, capsys):
        assert main(["worker", "--connect", "nonsense"]) == 2
        assert "HOST:PORT" in capsys.readouterr().err


class TestStoreCommand:
    def _populated_store(self, tmp_path):
        from repro.engine.capture_store import ShardedCaptureStore
        root = tmp_path / "captures"
        store = ShardedCaptureStore(root, prefix=2)
        shard = root / "ab"
        shard.mkdir(parents=True)
        (shard / "w-f0-ab00000000000000.npz").write_bytes(b"x" * 2048)
        (shard / "w-f1-ab11111111111111.npz").write_bytes(b"y" * 2048)
        corrupt = root / ".corrupt"
        corrupt.mkdir()
        (corrupt / "bad.npz").write_bytes(b"z" * 512)
        return root, store

    def test_stats_reports_shards_and_quarantine(self, tmp_path, capsys):
        root, _store = self._populated_store(tmp_path)
        assert main(["store", "stats", str(root)]) == 0
        out = capsys.readouterr().out
        assert "shard prefix 2" in out  # width auto-detected
        assert "ab" in out
        assert "2 entry(ies)" in out
        assert ".corrupt/ quarantine: 1 file(s)" in out

    def test_missing_directory_fails_cleanly(self, tmp_path, capsys):
        assert main(["store", "stats", str(tmp_path / "nope")]) == 2
        assert "not a directory" in capsys.readouterr().err

    def test_prune_dry_run_touches_nothing(self, tmp_path, capsys):
        root, store = self._populated_store(tmp_path)
        assert main([
            "store", "prune", str(root),
            "--max-bytes", "2048", "--dry-run",
        ]) == 0
        assert "would evict 1 entry(ies)" in capsys.readouterr().out
        assert len(store.entries()) == 2  # nothing actually evicted

    def test_prune_evicts_oldest(self, tmp_path, capsys):
        import os
        root, store = self._populated_store(tmp_path)
        entries = store.entries()
        os.utime(entries[0][0], (1_000, 1_000))  # definite oldest
        assert main([
            "store", "prune", str(root), "--max-bytes", "2048",
        ]) == 0
        out = capsys.readouterr().out
        assert "evicted 1 entry(ies)" in out
        assert len(store.entries()) == 1
