"""Tests for the CLI's best-effort result plotting."""

from repro.cli import _plot_result
from repro.experiments.runner import ExperimentResult


def _result(rows):
    return ExperimentResult(experiment="x", title="T", rows=rows)


class TestPlotResult:
    def test_threshold_rows_become_line_chart(self):
        rows = [
            {"workload": "average", "threshold": t, "speedup": 1.2 - t / 5,
             "mssim": 0.9 + t / 10}
            for t in (0.0, 0.5, 1.0)
        ]
        chart = _plot_result(_result(rows))
        assert chart is not None
        assert "speedup" in chart and "mssim" in chart

    def test_average_row_becomes_bar_chart(self):
        rows = [
            {"workload": "a", "baseline": 1.0, "patu": 0.9},
            {"workload": "average", "baseline": 1.0, "patu": 0.85},
        ]
        chart = _plot_result(_result(rows))
        assert chart is not None
        assert "patu" in chart

    def test_no_average_row_returns_none(self):
        rows = [{"workload": "a", "value": 1.0}]
        assert _plot_result(_result(rows)) is None

    def test_empty_rows_returns_none(self):
        assert _plot_result(_result([])) is None

    def test_non_numeric_columns_skipped(self):
        rows = [{"workload": "average", "threshold": 0.0, "speedup": 1.0,
                 "label": "x"},
                {"workload": "average", "threshold": 1.0, "speedup": 0.9,
                 "label": "y"}]
        chart = _plot_result(_result(rows))
        assert chart is not None
        assert "label" not in chart.splitlines()[-1]
