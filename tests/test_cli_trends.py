"""End-to-end `repro trends` gate: real CLI runs feeding a real ledger.

The acceptance contract for the trend gate: two identical seeded runs
must pass ``--check`` (exit 0) and a perturbed metric must flip it
(exit nonzero). Exercised with actual ``experiment`` runs so record
production, grouping, band math and the exit code are covered together.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.obs import read_ledger
from repro.obs.ledger import ledger_path


EXPERIMENT_ARGS = [
    "experiment", "fig19", "--workloads", "wolf-640x480",
    "--frames", "1", "--scale", "0.0625",
]


@pytest.fixture()
def ledger(tmp_path):
    return tmp_path / "ledger"


def run_experiment(ledger):
    assert main(EXPERIMENT_ARGS + ["--ledger", str(ledger)]) == 0


def trends(ledger, *extra):
    return main(["trends", "--ledger", str(ledger), *extra])


class TestTrendGate:
    def test_identical_runs_pass_the_check(self, ledger, capsys):
        run_experiment(ledger)
        run_experiment(ledger)
        records = read_ledger(ledger)
        assert len(records) == 2
        assert records[0]["config_digest"] == records[1]["config_digest"]
        capsys.readouterr()
        assert trends(ledger, "--check") == 0
        out = capsys.readouterr().out
        assert "ok: no metric left its trend band" in out
        assert "experiment" in out

    def test_perturbed_metric_flips_the_check(self, ledger, capsys):
        run_experiment(ledger)
        run_experiment(ledger)
        # Perturb a deterministic counter well past the 1% exact floor
        # in a raw copy of the newest record, exactly like a run whose
        # behavior changed would.
        path = ledger_path(ledger)
        records = [json.loads(line)
                   for line in path.read_text().splitlines()]
        bad = records[-1]
        name = "counter.session.capture_frames"
        assert name in bad["metrics"]
        bad["metrics"][name] *= 2.0
        with path.open("a", encoding="utf-8") as fh:
            fh.write(json.dumps(bad) + "\n")
        capsys.readouterr()
        assert trends(ledger, "--check", "--only-flagged") == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        assert name in out
        assert "FAIL:" in out

    def test_check_without_history_passes(self, ledger, capsys):
        run_experiment(ledger)
        assert trends(ledger, "--check") == 0
        assert "no history yet" in capsys.readouterr().out

    def test_report_mode_lists_every_metric(self, ledger, capsys):
        run_experiment(ledger)
        run_experiment(ledger)
        capsys.readouterr()
        assert trends(ledger) == 0
        out = capsys.readouterr().out
        assert "duration_s" in out
        assert "counter.session.capture_frames" in out


def inject_perturbed(src_dir, dst_dir, *, created):
    """Copy src's newest record into dst with a drifted counter.

    ``created`` must be strictly newest so the merged analysis treats
    the injected record as the latest run of its group.
    """
    records = [json.loads(line)
               for line in ledger_path(src_dir).read_text().splitlines()]
    bad = dict(records[-1])
    bad["metrics"] = dict(bad["metrics"])
    name = "counter.session.capture_frames"
    assert name in bad["metrics"]
    bad["metrics"][name] *= 2.0
    bad["created"] = created
    with ledger_path(dst_dir).open("a", encoding="utf-8") as fh:
        fh.write(json.dumps(bad) + "\n")


class TestMultiLedgerGate:
    def test_two_dirs_aggregate_and_flag_drift_in_either(
        self, tmp_path, capsys
    ):
        a, b = tmp_path / "a", tmp_path / "b"
        run_experiment(a)
        run_experiment(b)
        capsys.readouterr()
        # The shards merge into one comparable group...
        assert main(["trends", "--ledger", str(a), str(b), "--check"]) == 0
        out = capsys.readouterr().out
        assert out.count("== experiment") == 1
        assert "2 run(s)" in out
        # ...and an injected drift gates regardless of which shard
        # holds the newest record.
        inject_perturbed(a, a, created="2999-01-01T00:00:00+00:00")
        assert main(["trends", "--ledger", str(a), str(b), "--check"]) == 1
        inject_perturbed(b, b, created="2999-02-01T00:00:00+00:00")
        capsys.readouterr()
        assert main(["trends", "--ledger", str(a), str(b), "--check"]) == 1
        assert "REGRESSION" in capsys.readouterr().out
