"""Tests for the GPU configuration (Table I)."""

import pytest

from repro.config import (
    BASELINE_CONFIG,
    CPU_LATENCY_CYCLES,
    REFRESH_INTERVAL_CYCLES,
    CacheConfig,
    GpuConfig,
    MemoryConfig,
    TextureUnitConfig,
)
from repro.errors import ConfigError


class TestTable1Values:
    def test_baseline_matches_paper(self):
        cfg = BASELINE_CONFIG
        assert cfg.frequency_hz == 1_000_000_000
        assert cfg.num_clusters == 4
        assert cfg.shaders_per_cluster == 16
        assert cfg.num_texture_units == 4
        assert cfg.texture_unit.address_alus == 4
        assert cfg.texture_unit.filtering_alus == 8
        assert cfg.texture_unit.cycles_per_trilinear == 2
        assert cfg.texture_l1.size_bytes == 16 * 1024
        assert cfg.texture_l1.ways == 4
        assert cfg.texture_l2.size_bytes == 128 * 1024
        assert cfg.texture_l2.ways == 8
        assert cfg.memory.bytes_per_cycle == 16
        assert cfg.memory.channels == 8
        assert cfg.memory.banks_per_channel == 8

    def test_table1_rows_render_paper_strings(self):
        rows = dict(BASELINE_CONFIG.table1_rows())
        assert rows["Frequency"] == "1GHz"
        assert rows["Texture L1 cache"] == "16KB, 4-way"
        assert rows["Texture throughput"] == "2 cycle per trilinear"
        assert "8 banks per channel" in rows["Memory configuration"]

    def test_vsync_constants(self):
        assert REFRESH_INTERVAL_CYCLES == 16_666_667  # 60 Hz at 1 GHz
        assert CPU_LATENCY_CYCLES == REFRESH_INTERVAL_CYCLES // 2


class TestCacheConfig:
    def test_set_arithmetic(self):
        c = CacheConfig(size_bytes=16 * 1024, ways=4)
        assert c.num_sets == 64
        assert c.num_lines == 256

    def test_scaling_up(self):
        c = CacheConfig(size_bytes=16 * 1024, ways=4).scaled(4)
        assert c.size_bytes == 64 * 1024
        assert c.ways == 4

    def test_scaling_down_floors_at_one_set(self):
        c = CacheConfig(size_bytes=1024, ways=4).scaled_down(1000)
        assert c.num_sets == 1

    def test_rejects_indivisible_geometry(self):
        with pytest.raises(ConfigError):
            CacheConfig(size_bytes=1000, ways=3)

    def test_rejects_bad_scale(self):
        c = CacheConfig(size_bytes=1024, ways=4)
        with pytest.raises(ConfigError):
            c.scaled(0)
        with pytest.raises(ConfigError):
            c.scaled_down(0)


class TestGpuConfig:
    def test_cache_scaling_derives_new_config(self):
        scaled = BASELINE_CONFIG.scaled(texture_l1=2, texture_l2=4)
        assert scaled.texture_l1.size_bytes == 32 * 1024
        assert scaled.texture_l2.size_bytes == 512 * 1024
        # Original untouched (frozen dataclasses).
        assert BASELINE_CONFIG.texture_l2.size_bytes == 128 * 1024

    def test_rejects_odd_tile_size(self):
        with pytest.raises(ConfigError):
            GpuConfig(tile_size=15)

    def test_rejects_bad_max_aniso(self):
        with pytest.raises(ConfigError):
            TextureUnitConfig(max_anisotropy=64)

    def test_rejects_nonpositive_memory(self):
        with pytest.raises(ConfigError):
            MemoryConfig(channels=0)
