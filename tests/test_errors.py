"""Tests for the exception hierarchy."""

import pytest

from repro.errors import (
    ConfigError,
    ExperimentError,
    GeometryError,
    PipelineError,
    ReproError,
    TextureError,
    WorkloadError,
)

ALL_ERRORS = (
    ConfigError,
    ExperimentError,
    GeometryError,
    PipelineError,
    TextureError,
    WorkloadError,
)


def test_all_derive_from_repro_error():
    for err in ALL_ERRORS:
        assert issubclass(err, ReproError)
        assert issubclass(err, Exception)


def test_catching_base_catches_all():
    for err in ALL_ERRORS:
        with pytest.raises(ReproError):
            raise err("boom")


def test_errors_are_distinct_types():
    # Catching one specific subtype must not swallow the others.
    with pytest.raises(TextureError):
        try:
            raise TextureError("t")
        except GeometryError:  # pragma: no cover - must not trigger
            pytest.fail("TextureError caught as GeometryError")


def test_library_raises_its_own_types():
    from repro.config import CacheConfig
    from repro.geometry.linalg import perspective

    with pytest.raises(ConfigError):
        CacheConfig(size_bytes=-1, ways=1)
    with pytest.raises(GeometryError):
        perspective(1.0, 1.0, 5.0, 1.0)
