"""Tests for tiled texel address calculation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TextureError
from repro.texture.addressing import (
    CACHE_LINE_BYTES,
    TEXEL_BYTES,
    TILE_EDGE,
    TextureLayout,
)
from repro.texture.image import Texture2D
from repro.texture.mipmap import MipChain


def _layout(sizes=(32,)):
    chains = [
        MipChain(Texture2D(f"t{i}", np.zeros((s, s, 4))))
        for i, s in enumerate(sizes)
    ]
    return TextureLayout(chains), chains


class TestAddressUniqueness:
    def test_all_texels_of_a_level_have_distinct_addresses(self):
        layout, chains = _layout((16,))
        ys, xs = np.meshgrid(np.arange(16), np.arange(16), indexing="ij")
        addrs = layout.texel_addresses(
            0, np.zeros(256, dtype=np.int64), ys.ravel(), xs.ravel()
        )
        assert len(np.unique(addrs)) == 256

    def test_levels_do_not_overlap(self):
        layout, chains = _layout((16,))
        a0 = layout.texel_addresses(0, np.array([0]), np.array([15]), np.array([15]))
        a1 = layout.texel_addresses(0, np.array([1]), np.array([0]), np.array([0]))
        assert a1[0] > a0[0]

    def test_textures_do_not_overlap(self):
        layout, chains = _layout((16, 16))
        last_t0 = layout.texel_addresses(
            0,
            np.array([chains[0].max_level]),
            np.array([0]),
            np.array([0]),
        )
        first_t1 = layout.texel_addresses(1, np.array([0]), np.array([0]), np.array([0]))
        assert first_t1[0] > last_t0[0]


class TestTiledLayout:
    def test_texels_in_one_tile_share_few_lines(self):
        # An 8x8 texel tile is 256 bytes = 4 cache lines.
        layout, _ = _layout((32,))
        ys, xs = np.meshgrid(np.arange(8), np.arange(8), indexing="ij")
        addrs = layout.texel_addresses(
            0, np.zeros(64, dtype=np.int64), ys.ravel(), xs.ravel()
        )
        lines = np.unique(TextureLayout.line_addresses(addrs))
        assert len(lines) == TILE_EDGE * TILE_EDGE * TEXEL_BYTES // CACHE_LINE_BYTES

    def test_vertical_neighbours_within_tile_are_local(self):
        # Tiling keeps a 2x2 footprint within at most 2 lines, whereas a
        # raster-linear layout would spread it across distant rows.
        layout, _ = _layout((64,))
        footprint_y = np.array([3, 3, 4, 4])
        footprint_x = np.array([3, 4, 3, 4])
        addrs = layout.texel_addresses(
            0, np.zeros(4, dtype=np.int64), footprint_y, footprint_x
        )
        assert len(np.unique(TextureLayout.line_addresses(addrs))) <= 2

    def test_wrap_addressing(self):
        layout, _ = _layout((16,))
        a = layout.texel_addresses(0, np.array([0]), np.array([0]), np.array([0]))
        b = layout.texel_addresses(0, np.array([0]), np.array([16]), np.array([-16]))
        assert a[0] == b[0]

    def test_levels_are_line_aligned(self):
        layout, chains = _layout((32,))
        for lv in range(chains[0].num_levels):
            addr = layout.texel_addresses(
                0, np.array([lv]), np.array([0]), np.array([0])
            )
            assert addr[0] % CACHE_LINE_BYTES == 0


class TestValidation:
    def test_empty_layout_rejected(self):
        with pytest.raises(TextureError):
            TextureLayout([])

    def test_texture_index_bounds(self):
        layout, _ = _layout((16,))
        with pytest.raises(TextureError):
            layout.texel_addresses(1, np.array([0]), np.array([0]), np.array([0]))

    @settings(max_examples=25)
    @given(
        st.integers(min_value=-100, max_value=100),
        st.integers(min_value=-100, max_value=100),
        st.integers(min_value=0, max_value=3),
    )
    def test_addresses_inside_allocation(self, y, x, level):
        layout, _ = _layout((16,))
        addr = layout.texel_addresses(
            0, np.array([level]), np.array([y]), np.array([x])
        )
        assert 0 <= addr[0] < layout.total_bytes
