"""Tests for anisotropic filtering."""

import numpy as np
import pytest

from repro.errors import TextureError
from repro.texture.anisotropic import aniso_sample_positions, anisotropic_filter
from repro.texture.footprint import compute_footprints
from repro.texture.image import Texture2D
from repro.texture.mipmap import MipChain
from repro.texture.sampler import trilinear_sample

_TEX = 256


def _footprints(dudx, dvdx, dudy, dvdy, max_level=None):
    return compute_footprints(
        np.atleast_1d(dudx), np.atleast_1d(dvdx),
        np.atleast_1d(dudy), np.atleast_1d(dvdy),
        _TEX, _TEX, max_level=max_level,
    )


@pytest.fixture(scope="module")
def noise_chain():
    rng = np.random.default_rng(21)
    return MipChain(Texture2D("noise", rng.random((_TEX, _TEX, 4))))


class TestSamplePositions:
    def test_single_sample_sits_at_center(self):
        su, sv = aniso_sample_positions(
            np.array([0.3]), np.array([0.7]), np.array([0.1]), np.array([0.0]), 1
        )
        assert su[0, 0] == pytest.approx(0.3)
        assert sv[0, 0] == pytest.approx(0.7)

    def test_samples_symmetric_about_center(self):
        su, sv = aniso_sample_positions(
            np.array([0.5]), np.array([0.5]), np.array([0.2]), np.array([0.0]), 4
        )
        assert su.mean() == pytest.approx(0.5)
        assert sv.mean() == pytest.approx(0.5)

    def test_samples_span_less_than_major_extent(self):
        su, _ = aniso_sample_positions(
            np.array([0.5]), np.array([0.5]), np.array([0.2]), np.array([0.0]), 8
        )
        span = su.max() - su.min()
        assert span == pytest.approx(0.2 * (1 - 1 / 8))

    def test_samples_follow_major_axis_direction(self):
        su, sv = aniso_sample_positions(
            np.array([0.5]), np.array([0.5]), np.array([0.0]), np.array([0.3]), 4
        )
        assert np.ptp(su) == pytest.approx(0.0)
        assert np.ptp(sv) > 0.0

    def test_rejects_bad_count(self):
        with pytest.raises(TextureError):
            aniso_sample_positions(
                np.array([0.5]), np.array([0.5]), np.array([0.1]), np.array([0.0]), 0
            )


class TestAnisotropicFilter:
    def test_color_is_mean_of_constituent_samples(self, noise_chain):
        fp = _footprints(8 / _TEX, 0.0, 0.0, 2 / _TEX)
        u = np.array([0.4])
        v = np.array([0.6])
        result = anisotropic_filter(noise_chain, u, v, fp, np.array([True]), int(fp.n[0]))
        su, sv = aniso_sample_positions(
            u, v, fp.major_du, fp.major_dv, int(fp.n[0])
        )
        lod = np.broadcast_to(fp.lod_af[:, None], su.shape)
        expected = trilinear_sample(noise_chain, su, sv, lod).mean(axis=1)
        assert np.allclose(result.color, expected, atol=1e-6)

    def test_n_one_equals_trilinear(self, noise_chain):
        fp = _footprints(4 / _TEX, 0.0, 0.0, 4 / _TEX)
        assert fp.n[0] == 1
        u = np.array([0.3])
        v = np.array([0.2])
        result = anisotropic_filter(noise_chain, u, v, fp, np.array([True]), 1)
        expected = trilinear_sample(noise_chain, u, v, fp.lod_af)
        assert np.allclose(result.color, expected, atol=1e-6)

    def test_af_is_sharper_than_tf_on_grazing_checker(self):
        # The Fig. 3 effect: at a grazing footprint, AF keeps far more
        # contrast than trilinear at TF's (coarser) LOD. The checker
        # period is 8 texels so levels 0-2 retain full contrast while
        # TF's LOD (log2(16) = 4) has mipped to uniform gray.
        data = ((np.indices((_TEX, _TEX)) // 8).sum(0) % 2).astype(np.float64)
        chain = MipChain(Texture2D("chk", data))
        n_frag = 128
        rng = np.random.default_rng(5)
        u = rng.random(n_frag)
        v = rng.random(n_frag)
        fp = _footprints(
            np.full(n_frag, 16 / _TEX), np.zeros(n_frag),
            np.zeros(n_frag), np.full(n_frag, 2 / _TEX),
        )
        af = anisotropic_filter(chain, u, v, fp, np.ones(n_frag, bool), int(fp.n[0]))
        tf = trilinear_sample(chain, u, v, fp.lod_tf)
        assert af.color[:, 0].std() > tf[:, 0].std()

    def test_mixed_n_group_rejected(self, noise_chain):
        fp = _footprints(
            np.array([8 / _TEX, 4 / _TEX]), np.zeros(2),
            np.zeros(2), np.full(2, 2 / _TEX),
        )
        with pytest.raises(TextureError):
            anisotropic_filter(
                noise_chain, np.array([0.5, 0.5]), np.array([0.5, 0.5]),
                fp, np.array([True, True]), 4,
            )

    def test_sample_keys_shape_matches_n(self, noise_chain):
        fp = _footprints(6 / _TEX, 0.0, 0.0, 2 / _TEX)
        result = anisotropic_filter(
            noise_chain, np.array([0.5]), np.array([0.5]), fp,
            np.array([True]), int(fp.n[0]),
        )
        assert result.sample_keys.shape == (1, fp.n[0])
