"""Tests for the block texture-compression model."""

import numpy as np
import pytest

from repro.errors import TextureError
from repro.texture.compression import (
    BLOCK_BYTES,
    BLOCK_EDGE,
    CompressedTextureLayout,
    compress_chain,
    compress_level,
    compression_error,
)
from repro.texture.image import Texture2D
from repro.texture.mipmap import MipChain


class TestEncoder:
    def test_two_color_block_is_lossless(self):
        # A block containing only two colors reconstructs exactly.
        data = np.zeros((4, 4, 4))
        data[:, :2] = (1.0, 0.0, 0.0, 1.0)
        data[:, 2:] = (0.0, 0.0, 1.0, 1.0)
        out = compress_level(data)
        assert np.allclose(out[..., :3], data[..., :3], atol=1e-6)

    def test_constant_block_is_lossless(self):
        data = np.full((8, 8, 4), 0.42)
        out = compress_level(data)
        assert np.allclose(out, data, atol=1e-6)

    def test_gradient_error_is_bounded(self):
        ramp = np.linspace(0, 1, 16)[None, :] * np.ones((16, 1))
        tex = Texture2D("ramp", ramp)
        out = compress_level(tex.data)
        # 4-point palette across a smooth ramp: small quantization error.
        assert np.abs(out[..., :3] - tex.data[..., :3]).max() < 0.1

    def test_alpha_preserved(self):
        rng = np.random.default_rng(3)
        data = rng.random((8, 8, 4))
        out = compress_level(data)
        assert np.array_equal(out[..., 3], data[..., 3])

    def test_small_mip_tail_unchanged(self):
        data = np.random.default_rng(4).random((2, 2, 4))
        assert np.array_equal(compress_level(data), data)

    def test_noise_error_reasonable(self):
        rng = np.random.default_rng(5)
        chain = MipChain(Texture2D("n", rng.random((64, 64, 4))))
        err = compression_error(chain)
        assert 0.0 < err < 0.25  # lossy but usable

    def test_chain_compresses_every_level(self):
        rng = np.random.default_rng(6)
        chain = MipChain(Texture2D("c", rng.random((32, 32, 4))))
        comp = compress_chain(chain)
        assert comp.num_levels == chain.num_levels
        for a, b in zip(comp.levels, chain.levels):
            assert a.shape == b.shape


class TestCompressedLayout:
    def _layout(self):
        chain = MipChain(Texture2D("t", np.zeros((32, 32, 4))))
        return CompressedTextureLayout([chain])

    def test_block_sharing(self):
        layout = self._layout()
        # All 16 texels of one 4x4 block share one byte address.
        ys, xs = np.meshgrid(np.arange(4), np.arange(4), indexing="ij")
        addrs = layout.texel_addresses(
            0, np.zeros(16, dtype=np.int64), ys.ravel(), xs.ravel()
        )
        assert len(np.unique(addrs)) == 1

    def test_denser_than_uncompressed(self):
        from repro.texture.addressing import TextureLayout

        chain = MipChain(Texture2D("t", np.zeros((64, 64, 4))))
        raw = TextureLayout([chain])
        comp = CompressedTextureLayout([chain])
        assert comp.total_bytes * 4 <= raw.total_bytes

    def test_adjacent_blocks_distinct(self):
        layout = self._layout()
        a = layout.texel_addresses(0, np.array([0]), np.array([0]), np.array([0]))
        b = layout.texel_addresses(0, np.array([0]), np.array([0]),
                                   np.array([BLOCK_EDGE]))
        assert b[0] - a[0] == BLOCK_BYTES

    def test_line_covers_128_texels(self):
        layout = self._layout()
        ys, xs = np.meshgrid(np.arange(4), np.arange(32), indexing="ij")
        addrs = layout.texel_addresses(
            0, np.zeros(128, dtype=np.int64), ys.ravel(), xs.ravel()
        )
        # 32x4 texels = 8 blocks = exactly one 64-byte line.
        assert len(np.unique(layout.line_addresses(addrs))) == 1

    def test_validation(self):
        with pytest.raises(TextureError):
            CompressedTextureLayout([])
        layout = self._layout()
        with pytest.raises(TextureError):
            layout.texel_addresses(5, np.array([0]), np.array([0]), np.array([0]))


class TestSessionIntegration:
    def test_compressed_session_reduces_traffic(self, mini_workload):
        from repro.core.scenarios import SCENARIOS
        from repro.renderer.session import RenderSession

        raw = RenderSession(scale=1.0, scale_caches=False)
        comp = RenderSession(scale=1.0, scale_caches=False,
                             compressed_textures=True)
        raw_r = raw.evaluate(
            raw.capture_frame(mini_workload, 0), SCENARIOS["baseline"], 1.0
        )
        comp_r = comp.evaluate(
            comp.capture_frame(mini_workload, 0), SCENARIOS["baseline"], 1.0
        )
        assert comp_r.hierarchy.dram_bytes < raw_r.hierarchy.dram_bytes
        # Same visibility and filtering workload either way.
        assert comp_r.events.trilinear_samples == raw_r.events.trilinear_samples
