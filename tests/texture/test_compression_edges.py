"""Differential edge cases for the block compressor.

Inputs where the 4x4 DXT1-style codec is analytically lossless (flat
blocks, blocks whose texels are all palette entries) must survive the
encode-decode round trip — and therefore filter *identically* to the
uncompressed texture. General inputs are checked differentially
against the scalar reference sampler over compressed storage, and the
alpha channel must never be touched (only RGB is encoded).
"""

import numpy as np
import pytest

from repro.texture.compression import (
    BLOCK_EDGE,
    compress_chain,
    compress_level,
    compression_error,
)
from repro.texture.image import Texture2D
from repro.texture.mipmap import MipChain
from repro.texture.sampler import trilinear_sample
from repro.verify.reference import ref_trilinear


def _rgba(rgb_rows) -> np.ndarray:
    arr = np.asarray(rgb_rows, dtype=np.float32)
    out = np.ones(arr.shape[:2] + (4,), dtype=np.float32)
    out[..., :3] = arr
    return out


def test_flat_blocks_are_lossless():
    level = np.full((8, 8, 4), 0.375, dtype=np.float32)
    np.testing.assert_array_equal(compress_level(level), level)


def test_flat_chain_filters_identically_to_uncompressed():
    data = np.full((16, 16, 4), 0.6, dtype=np.float32)
    chain = MipChain(Texture2D("flat", data))
    comp = compress_chain(chain)
    rng = np.random.default_rng(3)
    u, v = rng.uniform(-1, 2, 32), rng.uniform(-1, 2, 32)
    lod = rng.uniform(0, chain.max_level, 32)
    np.testing.assert_array_equal(
        trilinear_sample(comp, u, v, lod), trilinear_sample(chain, u, v, lod)
    )


def test_single_texel_extremes_survive():
    # One white texel in a black block: both extremes are palette
    # endpoints, everything else snaps to the nearer endpoint — the
    # block round-trips exactly.
    rgb = np.zeros((BLOCK_EDGE, BLOCK_EDGE, 3), dtype=np.float32)
    rgb[1, 2] = 1.0
    level = _rgba(rgb)
    decoded = compress_level(level)
    np.testing.assert_array_equal(decoded, level)


def test_two_level_blocks_round_trip():
    # Blocks whose texels sit exactly on the 4-entry palette (endpoints
    # plus thirds) reconstruct bit-exactly in float32.
    lo, hi = 0.25, 0.625  # span 0.375 = 3/8: thirds are exact in binary
    palette = np.float32([lo, lo + (hi - lo) / 3, lo + 2 * (hi - lo) / 3, hi])
    rng = np.random.default_rng(7)
    # Grayscale texels on the lo->hi segment, so every texel is a
    # palette blend of the block's own endpoints.
    gray = palette[rng.integers(0, 4, (8, 8))]
    gray[0::4, 0::4] = lo  # pin the extremes of every 4x4 block to lo/hi
    gray[0::4, 1::4] = hi
    rgb = np.repeat(gray[..., None], 3, axis=2)
    level = _rgba(rgb)
    decoded = compress_level(level)
    np.testing.assert_allclose(decoded, level, atol=1e-7)


def test_alpha_channel_is_never_touched():
    rng = np.random.default_rng(11)
    level = rng.random((16, 16, 4)).astype(np.float32)
    level[..., 3] = np.linspace(0, 1, 16, dtype=np.float32)[None, :]
    decoded = compress_level(level)
    np.testing.assert_array_equal(decoded[..., 3], level[..., 3])
    # ...even on the uncompressed mip tail.
    tail = rng.random((2, 2, 4)).astype(np.float32)
    np.testing.assert_array_equal(compress_level(tail)[..., 3], tail[..., 3])


def test_small_levels_pass_through_unchanged():
    tail = np.random.default_rng(5).random((2, 2, 4)).astype(np.float32)
    out = compress_level(tail)
    np.testing.assert_array_equal(out, tail)
    assert out is not tail  # defensive copy, not the same buffer


def test_compressed_chain_filters_match_reference():
    # Differential: the vectorized sampler over *compressed* storage
    # agrees with the scalar reference over the same compressed chain
    # to the standard color tolerance.
    base = np.random.default_rng(23).random((32, 32, 4)).astype(np.float32)
    comp = compress_chain(MipChain(Texture2D("noise", base)))
    rng = np.random.default_rng(29)
    worst = 0.0
    for _ in range(64):
        u, v = rng.uniform(-1, 2), rng.uniform(-1, 2)
        lod = rng.uniform(0, comp.max_level)
        vec = trilinear_sample(
            comp, np.asarray([u]), np.asarray([v]), np.asarray([lod])
        )[0]
        ref = ref_trilinear(comp, u, v, lod)
        worst = max(worst, float(np.abs(vec - ref).max()))
    assert worst <= 1e-6


def test_compression_error_is_bounded_and_zero_for_flat():
    flat = MipChain(Texture2D("flat", np.full((8, 8, 4), 0.2, np.float32)))
    assert compression_error(flat) == 0.0
    noisy = MipChain(
        Texture2D(
            "noisy",
            np.random.default_rng(1).random((16, 16, 4)).astype(np.float32),
        )
    )
    err = compression_error(noisy)
    assert 0.0 < err < 0.5  # lossy but sane for uniform noise


def test_bad_block_alignment_raises():
    from repro.errors import TextureError

    with pytest.raises(TextureError):
        compress_level(np.zeros((6, 8, 4), dtype=np.float32))
