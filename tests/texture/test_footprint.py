"""Tests for footprint / LOD / anisotropy computation."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import TextureError
from repro.texture.footprint import compute_footprints

_TEX = 256


def _fp(dudx, dvdx, dudy, dvdy, **kwargs):
    return compute_footprints(
        np.atleast_1d(dudx),
        np.atleast_1d(dvdx),
        np.atleast_1d(dudy),
        np.atleast_1d(dvdy),
        _TEX,
        _TEX,
        **kwargs,
    )


class TestAnisotropyDegree:
    def test_isotropic_footprint_has_n_one(self):
        fp = _fp(4 / _TEX, 0.0, 0.0, 4 / _TEX)
        assert fp.n[0] == 1

    def test_n_equals_axis_ratio(self):
        # Px = 8 texels, Py = 2 texels -> ratio 4.
        fp = _fp(8 / _TEX, 0.0, 0.0, 2 / _TEX)
        assert fp.n[0] == 4

    def test_n_is_ceiling_of_ratio(self):
        # ratio 2.5 -> N = 3.
        fp = _fp(5 / _TEX, 0.0, 0.0, 2 / _TEX)
        assert fp.n[0] == 3

    def test_n_clamped_to_max_aniso(self):
        fp = _fp(200 / _TEX, 0.0, 0.0, 1 / _TEX)
        assert fp.n[0] == 16
        fp8 = _fp(200 / _TEX, 0.0, 0.0, 1 / _TEX, max_aniso=8)
        assert fp8.n[0] == 8

    def test_magnified_fragments_never_need_af(self):
        # Footprint smaller than one texel: N forced to 1.
        fp = _fp(0.4 / _TEX, 0.0, 0.0, 0.05 / _TEX)
        assert fp.n[0] == 1

    @given(
        st.floats(min_value=0.5, max_value=64.0),
        st.floats(min_value=0.5, max_value=64.0),
        st.floats(min_value=-np.pi, max_value=np.pi),
    )
    def test_n_invariant_under_screen_rotation(self, px, py, angle):
        # Rotating which screen direction maps to the major axis must
        # not change the anisotropy degree.
        c, s = np.cos(angle), np.sin(angle)
        straight = _fp(px / _TEX, 0.0, 0.0, py / _TEX)
        rotated = _fp(
            px * c / _TEX, px * s / _TEX, -py * s / _TEX, py * c / _TEX
        )
        assert straight.n[0] == rotated.n[0]


class TestLodSelection:
    def test_tf_lod_follows_major_axis(self):
        fp = _fp(8 / _TEX, 0.0, 0.0, 2 / _TEX)
        assert fp.lod_tf[0] == pytest.approx(3.0)  # log2(8)

    def test_af_lod_is_minor_axis(self):
        fp = _fp(8 / _TEX, 0.0, 0.0, 2 / _TEX)
        # lod_af = log2(Pmax / N) = log2(8 / 4) = 1.
        assert fp.lod_af[0] == pytest.approx(1.0)

    def test_af_lod_never_exceeds_tf_lod(self):
        rng = np.random.default_rng(7)
        d = rng.uniform(-32 / _TEX, 32 / _TEX, size=(4, 64))
        fp = _fp(d[0], d[1], d[2], d[3])
        assert np.all(fp.lod_af <= fp.lod_tf + 1e-12)

    def test_lod_shift_grows_with_anisotropy(self):
        # The Fig. 15 LOD shift is exactly log2(N) for unclamped LODs.
        fp = _fp(16 / _TEX, 0.0, 0.0, 2 / _TEX)
        assert fp.lod_tf[0] - fp.lod_af[0] == pytest.approx(np.log2(fp.n[0]))

    def test_max_level_clamp(self):
        fp = _fp(10000 / _TEX, 0.0, 0.0, 10000 / _TEX, max_level=5)
        assert fp.lod_tf[0] == pytest.approx(5.0)


class TestMajorAxis:
    def test_major_axis_picks_larger_direction(self):
        fp = _fp(8 / _TEX, 0.0, 0.0, 2 / _TEX)
        assert fp.major_du[0] == pytest.approx(8 / _TEX)
        assert fp.major_dv[0] == pytest.approx(0.0)

    def test_major_axis_flips_with_orientation(self):
        fp = _fp(2 / _TEX, 0.0, 0.0, 8 / _TEX)
        assert fp.major_du[0] == pytest.approx(0.0)
        assert fp.major_dv[0] == pytest.approx(8 / _TEX)


class TestValidation:
    def test_rejects_bad_texture_size(self):
        with pytest.raises(TextureError):
            compute_footprints(
                np.array([0.1]), np.array([0.0]), np.array([0.0]), np.array([0.1]),
                0, 256,
            )

    def test_rejects_bad_max_aniso(self):
        with pytest.raises(TextureError):
            _fp(0.1, 0.0, 0.0, 0.1, max_aniso=32)
