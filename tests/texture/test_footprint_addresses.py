"""Equivalence tests for the separable 2x2 footprint address kernels.

``footprint_addresses`` factors the tiled (or block-compressed)
address into independent x/y byte offsets so the wrap mods and tile
splits run once per axis; these tests pin it bit-identical to
``texel_addresses`` over the four expanded corners, for both layouts,
including wrap at the texture edge, non-square shapes, and the tiny
tail levels of a mip chain (where wrap actually bites).
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.texture.addressing import TextureLayout
from repro.texture.compression import CompressedTextureLayout
from repro.texture.image import Texture2D
from repro.texture.mipmap import MipChain


def _chains(sizes):
    rng = np.random.default_rng(3)
    return [
        MipChain(Texture2D(f"t{i}", rng.random((h, w, 4))))
        for i, (h, w) in enumerate(sizes)
    ]


def _expanded_corners(layout, tex_index, level, iu, iv):
    """texel_addresses over the four corners, in footprint order."""
    corners = [(iv, iu), (iv, iu + 1), (iv + 1, iu), (iv + 1, iu + 1)]
    return np.stack(
        [layout.texel_addresses(tex_index, level, y, x) for y, x in corners],
        axis=-1,
    )


def _assert_equivalent(layout, chains):
    rng = np.random.default_rng(17)
    for tex_index, chain in enumerate(chains):
        for level in range(chain.max_level + 1):
            w = chain.levels[level].shape[1]
            h = chain.levels[level].shape[0]
            # Dense interior plus the wrap-critical last row/column.
            iu = np.concatenate([rng.integers(0, w, 64), [w - 1, w - 1]])
            iv = np.concatenate([rng.integers(0, h, 64), [h - 1, 0]])
            lv = np.full(iu.shape, level, dtype=np.int64)
            got = layout.footprint_addresses(tex_index, lv, iu, iv)
            want = _expanded_corners(layout, tex_index, lv, iu, iv)
            assert np.array_equal(got, want), (tex_index, level)


class TestTiledLayout:
    def test_matches_texel_addresses_everywhere(self):
        chains = _chains([(64, 64), (32, 8), (4, 16)])
        _assert_equivalent(TextureLayout(chains), chains)

    @settings(max_examples=40, deadline=None)
    @given(
        w_log=st.integers(0, 6),
        h_log=st.integers(0, 6),
        seed=st.integers(0, 2**16),
    )
    def test_matches_on_arbitrary_shapes(self, w_log, h_log, seed):
        chains = _chains([(1 << h_log, 1 << w_log)])
        layout = TextureLayout(chains)
        rng = np.random.default_rng(seed)
        level = rng.integers(0, chains[0].max_level + 1)
        lw = chains[0].levels[level].shape[1]
        lh = chains[0].levels[level].shape[0]
        iu = rng.integers(0, lw, 16)
        iv = rng.integers(0, lh, 16)
        lv = np.full(16, level, dtype=np.int64)
        got = layout.footprint_addresses(0, lv, iu, iv)
        want = _expanded_corners(layout, 0, lv, iu, iv)
        assert np.array_equal(got, want)


class TestCompressedLayout:
    def test_matches_texel_addresses_everywhere(self):
        chains = _chains([(64, 64), (32, 8), (4, 16)])
        _assert_equivalent(CompressedTextureLayout(chains), chains)

    def test_mixed_levels_in_one_call(self):
        chains = _chains([(64, 64)])
        layout = CompressedTextureLayout(chains)
        rng = np.random.default_rng(5)
        levels = rng.integers(0, chains[0].max_level + 1, 128)
        dims_w = np.asarray(
            [chains[0].levels[lv].shape[1] for lv in levels]
        )
        dims_h = np.asarray(
            [chains[0].levels[lv].shape[0] for lv in levels]
        )
        iu = rng.integers(0, 1 << 16, 128) % dims_w
        iv = rng.integers(0, 1 << 16, 128) % dims_h
        got = layout.footprint_addresses(0, levels, iu, iv)
        want = _expanded_corners(layout, 0, levels, iu, iv)
        assert np.array_equal(got, want)
