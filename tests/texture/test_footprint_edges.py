"""Edge-case tests for footprint computation: clamps and degeneracy."""

import numpy as np
import pytest

from repro.texture.footprint import compute_footprints

_TEX = 64


def _fp(dudx, dvdx, dudy, dvdy, **kw):
    return compute_footprints(
        np.atleast_1d(np.asarray(dudx, float)),
        np.atleast_1d(np.asarray(dvdx, float)),
        np.atleast_1d(np.asarray(dudy, float)),
        np.atleast_1d(np.asarray(dvdy, float)),
        _TEX, _TEX, **kw,
    )


class TestDegenerateDerivatives:
    def test_zero_derivatives_are_isotropic(self):
        fp = _fp(0.0, 0.0, 0.0, 0.0)
        assert fp.n[0] == 1
        assert fp.lod_tf[0] == 0.0
        assert fp.lod_af[0] == 0.0

    def test_one_axis_zero_is_magnification_guarded(self):
        # Py == 0 would make the ratio infinite; the N=16 clamp and the
        # magnification guard must both behave.
        fp = _fp(8.0 / _TEX, 0.0, 0.0, 0.0)
        assert fp.n[0] == 16  # ratio clamped at max aniso
        sub = _fp(0.5 / _TEX, 0.0, 0.0, 0.0)
        assert sub.n[0] == 1  # sub-texel footprint: no AF

    def test_negative_derivatives_same_footprint(self):
        pos = _fp(8 / _TEX, 0.0, 0.0, 2 / _TEX)
        neg = _fp(-8 / _TEX, 0.0, 0.0, -2 / _TEX)
        assert pos.n[0] == neg.n[0]
        assert pos.lod_tf[0] == neg.lod_tf[0]

    def test_diagonal_footprint_magnitudes(self):
        # du/dx = dv/dx = 4/sqrt(2) texels gives |Px| = 4 exactly.
        c = 4.0 / np.sqrt(2.0) / _TEX
        fp = _fp(c, c, 0.0, 1.0 / _TEX)
        assert fp.px[0] == pytest.approx(4.0)


class TestClamping:
    def test_huge_footprint_lod_clamped_by_max_level(self):
        fp = _fp(1e6 / _TEX, 0.0, 0.0, 1e6 / _TEX, max_level=6)
        assert fp.lod_tf[0] == 6.0
        assert fp.lod_af[0] == 6.0

    def test_lod_af_floor_at_zero(self):
        # Anisotropic but magnified along the minor axis: AF LOD >= 0.
        fp = _fp(4 / _TEX, 0.0, 0.0, 0.1 / _TEX)
        assert fp.lod_af[0] >= 0.0

    def test_vector_batch_consistency(self):
        # Batched computation must equal elementwise computation.
        rng = np.random.default_rng(13)
        d = rng.uniform(-20 / _TEX, 20 / _TEX, size=(4, 32))
        batch = _fp(d[0], d[1], d[2], d[3])
        for i in range(32):
            single = _fp(d[0, i], d[1, i], d[2, i], d[3, i])
            assert batch.n[i] == single.n[0]
            assert batch.lod_tf[i] == pytest.approx(single.lod_tf[0])
            assert batch.major_du[i] == pytest.approx(single.major_du[0])
