"""Tests for texture images and mipmap chains."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TextureError
from repro.texture.image import Texture2D
from repro.texture.mipmap import MipChain


class TestTexture2D:
    def test_grayscale_is_expanded_to_rgba(self):
        tex = Texture2D("g", np.zeros((8, 8)))
        assert tex.data.shape == (8, 8, 4)
        assert np.allclose(tex.data[..., 3], 1.0)

    def test_values_are_clamped(self):
        data = np.full((4, 4, 4), 2.0)
        tex = Texture2D("c", data)
        assert tex.data.max() == 1.0

    def test_rejects_non_power_of_two(self):
        with pytest.raises(TextureError):
            Texture2D("bad", np.zeros((6, 8, 4)))

    def test_rejects_nan(self):
        data = np.zeros((4, 4, 4))
        data[0, 0, 0] = np.nan
        with pytest.raises(TextureError):
            Texture2D("nan", data)

    def test_rejects_empty_name(self):
        with pytest.raises(TextureError):
            Texture2D("", np.zeros((4, 4, 4)))


class TestMipChain:
    def test_level_count_for_square_texture(self):
        chain = MipChain(Texture2D("t", np.zeros((64, 64, 4))))
        assert chain.num_levels == 7  # 64 -> 1
        assert chain.level_size(0) == (64, 64)
        assert chain.level_size(6) == (1, 1)

    def test_box_filter_preserves_mean(self):
        rng = np.random.default_rng(3)
        chain = MipChain(Texture2D("t", rng.random((32, 32, 4))))
        base_mean = chain.levels[0].mean(axis=(0, 1))
        for level in chain.levels[1:]:
            assert np.allclose(level.mean(axis=(0, 1)), base_mean, atol=1e-6)

    def test_checkerboard_mips_to_gray(self):
        data = (np.indices((16, 16)).sum(axis=0) % 2).astype(np.float64)
        chain = MipChain(Texture2D("chk", data))
        # One 2x2 box average collapses the checker to uniform 0.5.
        assert np.allclose(chain.levels[1][..., 0], 0.5)

    def test_total_texels_close_to_four_thirds(self):
        chain = MipChain(Texture2D("t", np.zeros((256, 256, 4))))
        ratio = chain.total_texels() / (256 * 256)
        assert 1.33 < ratio < 1.34

    def test_level_bounds_checked(self):
        chain = MipChain(Texture2D("t", np.zeros((8, 8, 4))))
        with pytest.raises(TextureError):
            chain.level_size(10)

    def test_gather_wraps_coordinates(self):
        data = np.zeros((4, 4))
        data[0, 0] = 1.0
        chain = MipChain(Texture2D("t", data))
        level = np.zeros(2, dtype=np.int64)
        out = chain.gather(level, np.array([4, -4]), np.array([0, 4]))
        assert out[0, 0] == pytest.approx(1.0)
        assert out[1, 0] == pytest.approx(1.0)

    @settings(max_examples=20)
    @given(st.integers(min_value=2, max_value=7))
    def test_level_dimensions_halve(self, log_size):
        size = 1 << log_size
        chain = MipChain(Texture2D("t", np.zeros((size, size, 4))))
        for i in range(chain.num_levels):
            w, h = chain.level_size(i)
            assert w == h == max(size >> i, 1)
