"""Tests for bilinear/trilinear sampling and footprint keys."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TextureError
from repro.texture.image import Texture2D
from repro.texture.mipmap import MipChain
from repro.texture.sampler import (
    bilinear_sample,
    footprint_keys_from_info,
    texel_coords_from_info,
    trilinear_footprint_keys,
    trilinear_info,
    trilinear_sample,
)

_unit = st.floats(min_value=0.0, max_value=1.0, exclude_max=True)


@pytest.fixture(scope="module")
def flat_chain():
    return MipChain(Texture2D("flat", np.full((32, 32, 4), 0.25)))


class TestBilinear:
    def test_constant_texture_samples_constant(self, flat_chain):
        out = bilinear_sample(flat_chain, 0, np.array([0.1, 0.5, 0.99]),
                              np.array([0.3, 0.7, 0.01]))
        assert np.allclose(out, 0.25)

    def test_texel_center_returns_exact_texel(self, checker_chain):
        # Texel centers sit at (i + 0.5) / size in normalized coords.
        size = checker_chain.texture.width
        u = (np.arange(4) + 0.5) / size
        v = np.full(4, 0.5 / size)
        out = bilinear_sample(checker_chain, 0, u, v)
        expected = checker_chain.levels[0][0, :4]
        assert np.allclose(out, expected)

    def test_midpoint_blends_neighbours(self, gradient_chain):
        # Halfway between two texel centers -> average of the two.
        size = gradient_chain.texture.width
        u = np.array([1.0 / size])  # boundary between texels 0 and 1
        v = np.array([0.5 / size])
        out = bilinear_sample(gradient_chain, 0, u, v)
        t0 = gradient_chain.levels[0][0, 0]
        t1 = gradient_chain.levels[0][0, 1]
        assert np.allclose(out[0], (t0 + t1) / 2, atol=1e-6)

    def test_level_bounds_checked(self, flat_chain):
        with pytest.raises(TextureError):
            bilinear_sample(flat_chain, 99, np.array([0.5]), np.array([0.5]))


class TestTrilinear:
    def test_integer_lod_equals_bilinear(self, checker_chain):
        u = np.array([0.37, 0.62])
        v = np.array([0.11, 0.93])
        tri = trilinear_sample(checker_chain, u, v, np.array([2.0, 2.0]))
        bil = bilinear_sample(checker_chain, 2, u, v)
        assert np.allclose(tri, bil, atol=1e-6)

    def test_fractional_lod_blends_levels(self, checker_chain):
        u = np.array([0.4])
        v = np.array([0.4])
        lo = trilinear_sample(checker_chain, u, v, np.array([1.0]))
        hi = trilinear_sample(checker_chain, u, v, np.array([2.0]))
        mid = trilinear_sample(checker_chain, u, v, np.array([1.5]))
        assert np.allclose(mid, (lo + hi) / 2, atol=1e-6)

    def test_lod_clamped_to_chain(self, checker_chain):
        out = trilinear_sample(
            checker_chain, np.array([0.5]), np.array([0.5]), np.array([99.0])
        )
        coarsest = checker_chain.levels[-1][0, 0]
        assert np.allclose(out[0], coarsest, atol=1e-6)

    @settings(max_examples=25)
    @given(_unit, _unit, st.floats(min_value=0.0, max_value=6.0))
    def test_output_within_texture_range(self, u, v, lod):
        chain = MipChain(Texture2D("chk2", (np.indices((16, 16)).sum(0) % 2).astype(float)))
        out = trilinear_sample(chain, np.array([u]), np.array([v]), np.array([lod]))
        assert np.all(out >= -1e-6) and np.all(out <= 1.0 + 1e-6)


class TestFootprintKeys:
    def test_same_position_same_key(self, checker_chain):
        k1 = trilinear_footprint_keys(
            checker_chain, np.array([0.5]), np.array([0.5]), np.array([1.0])
        )
        k2 = trilinear_footprint_keys(
            checker_chain, np.array([0.5]), np.array([0.5]), np.array([1.0])
        )
        assert k1[0] == k2[0]

    def test_same_footprint_same_key(self, checker_chain):
        # Two positions inside the same 2x2 footprint share all 8 texels.
        size = checker_chain.texture.width >> 1  # level 1
        u = np.array([0.5 + 0.05 / size, 0.5 + 0.3 / size])
        v = np.array([0.5, 0.5])
        keys = trilinear_footprint_keys(checker_chain, u, v, np.array([1.0, 1.0]))
        assert keys[0] == keys[1]

    def test_distant_positions_differ(self, checker_chain):
        keys = trilinear_footprint_keys(
            checker_chain, np.array([0.1, 0.9]), np.array([0.1, 0.9]),
            np.array([0.0, 0.0]),
        )
        assert keys[0] != keys[1]

    def test_different_lod_levels_differ(self, checker_chain):
        keys0 = trilinear_footprint_keys(
            checker_chain, np.array([0.5]), np.array([0.5]), np.array([0.0])
        )
        keys2 = trilinear_footprint_keys(
            checker_chain, np.array([0.5]), np.array([0.5]), np.array([2.0])
        )
        assert keys0[0] != keys2[0]

    def test_keys_equal_iff_texel_sets_equal(self, checker_chain):
        rng = np.random.default_rng(11)
        u = rng.random(64)
        v = rng.random(64)
        lod = rng.uniform(0, 3, 64)
        info = trilinear_info(checker_chain, u, v, lod)
        keys = footprint_keys_from_info(info)
        levels, iy, ix = texel_coords_from_info(info)
        # Canonical texel-set identity: the sorted (level, y, x) triplets.
        sets = [
            frozenset(zip(levels[i].tolist(), iy[i].tolist(), ix[i].tolist()))
            for i in range(64)
        ]
        for i in range(64):
            for j in range(i + 1, 64):
                assert (keys[i] == keys[j]) == (sets[i] == sets[j])


class TestTexelCoords:
    def test_eight_texels_per_sample(self, checker_chain):
        info = trilinear_info(
            checker_chain, np.array([0.3]), np.array([0.7]), np.array([1.5])
        )
        levels, iy, ix = texel_coords_from_info(info)
        assert levels.shape == (1, 8)
        assert set(levels[0].tolist()) == {1, 2}
        # 2x2 footprint at each level.
        assert iy.shape == (1, 8) and ix.shape == (1, 8)
