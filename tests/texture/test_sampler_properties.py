"""Property tests for the footprint-key packing (hypothesis).

The key layout promises (sampler.py): textures up to 8192 texels/side
(13-bit wrapped footprint coordinates) and 16 mip levels pack into one
int64 with no aliasing *within* those bounds. These properties drive
the packing across that whole documented envelope — the corners
(8192-texel base level, mip level 15, wrap-around coordinates) are
exactly where a hand-rolled shift layout would silently collide.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.texture.sampler import (
    _COORD_BITS,
    _COORD_MASK,
    TrilinearInfo,
    footprint_keys_from_info,
    unpack_footprint_key,
)

MAX_COORD = _COORD_MASK  # 8191: largest in-range texel coordinate
MAX_LEVEL = 15

levels = st.integers(min_value=0, max_value=MAX_LEVEL)
coords = st.integers(min_value=0, max_value=MAX_COORD)
# Signed coordinates as produced by floor(u * size - 0.5) under wrap
# addressing: a few texels either side of the level extent.
wrapping_coords = st.integers(min_value=-(MAX_COORD + 1), max_value=2 * MAX_COORD)


def _info(l0, iu0, iv0, iu1, iv1):
    """A TrilinearInfo carrying only the fields the key packer reads."""
    as_arr = lambda v: np.atleast_1d(np.asarray(v, dtype=np.int64))  # noqa: E731
    zeros = np.zeros_like(as_arr(l0), dtype=np.float64)
    return TrilinearInfo(
        l0=as_arr(l0), l1=as_arr(l0) + 1,
        iu0=as_arr(iu0), iv0=as_arr(iv0), fu0=zeros, fv0=zeros,
        iu1=as_arr(iu1), iv1=as_arr(iv1), fu1=zeros, fv1=zeros,
        lfrac=zeros,
    )


@given(l0=levels, iu0=coords, iv0=coords, iu1=coords, iv1=coords)
def test_pack_unpack_round_trips(l0, iu0, iv0, iu1, iv1):
    key = footprint_keys_from_info(_info(l0, iu0, iv0, iu1, iv1))
    assert key.dtype == np.int64
    got = unpack_footprint_key(key)
    assert [int(g[0]) for g in got] == [l0, iu0, iv0, iu1, iv1]


@given(l0=levels, iu0=wrapping_coords, iv0=wrapping_coords,
       iu1=wrapping_coords, iv1=wrapping_coords)
def test_wrapped_coordinates_alias_their_canonical_texel(l0, iu0, iv0, iu1, iv1):
    # An 8192-texel level wraps coordinates mod 8192: coordinate c and
    # c +/- 8192 name the same texel, so they must produce the same key.
    raw = footprint_keys_from_info(_info(l0, iu0, iv0, iu1, iv1))
    canon = footprint_keys_from_info(_info(
        l0, iu0 & _COORD_MASK, iv0 & _COORD_MASK,
        iu1 & _COORD_MASK, iv1 & _COORD_MASK,
    ))
    assert int(raw[0]) == int(canon[0])


@settings(max_examples=25)
@given(
    l0=levels,
    rows=st.lists(
        st.tuples(coords, coords, coords, coords),
        min_size=2, max_size=64, unique=True,
    ),
)
def test_no_key_collisions_within_a_level(l0, rows):
    arr = np.asarray(rows, dtype=np.int64)
    keys = footprint_keys_from_info(
        _info(np.full(len(rows), l0), arr[:, 0], arr[:, 1], arr[:, 2], arr[:, 3])
    )
    assert len(np.unique(keys)) == len(rows)


def test_documented_boundary_corners_stay_positive_and_distinct():
    # Mip level 15 of an 8192-texel texture at the far texel corner is
    # the largest representable key; it must not overflow into the sign
    # bit, and the all-extremes corners must remain distinct.
    top = _info(MAX_LEVEL, MAX_COORD, MAX_COORD, MAX_COORD, MAX_COORD)
    bottom = _info(0, 0, 0, 0, 0)
    key_top = footprint_keys_from_info(top)
    assert int(key_top[0]) == (
        (MAX_LEVEL << 4 * _COORD_BITS)
        | (MAX_COORD << 3 * _COORD_BITS)
        | (MAX_COORD << 2 * _COORD_BITS)
        | (MAX_COORD << _COORD_BITS)
        | MAX_COORD
    )
    assert int(key_top[0]) > 0
    assert int(key_top[0]) != int(footprint_keys_from_info(bottom)[0])
    # Adjacent texels at the extreme level differ in the key.
    near = _info(MAX_LEVEL, MAX_COORD - 1, MAX_COORD, MAX_COORD, MAX_COORD)
    assert int(key_top[0]) != int(footprint_keys_from_info(near)[0])


def test_levels_never_collide_for_same_coordinates():
    base = (12, 34, 56, 78)
    keys = {
        int(footprint_keys_from_info(_info(level, *base))[0])
        for level in range(MAX_LEVEL + 1)
    }
    assert len(keys) == MAX_LEVEL + 1
