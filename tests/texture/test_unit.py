"""Tests for the conventional texture unit's capture batch."""

import numpy as np
import pytest

from repro.errors import TextureError
from repro.texture.addressing import TextureLayout
from repro.texture.image import Texture2D
from repro.texture.mipmap import MipChain
from repro.texture.unit import TEXELS_PER_TRILINEAR, TextureUnit

_TEX = 128


@pytest.fixture(scope="module")
def unit():
    rng = np.random.default_rng(17)
    chain = MipChain(Texture2D("t", rng.random((_TEX, _TEX, 4))))
    return TextureUnit(TextureLayout([chain]))


def _batch(unit, n_frag=64, seed=3, aniso=4.0):
    rng = np.random.default_rng(seed)
    u = rng.random(n_frag)
    v = rng.random(n_frag)
    dudx = np.full(n_frag, aniso * 2 / _TEX)
    dvdx = np.zeros(n_frag)
    dudy = np.zeros(n_frag)
    dvdy = np.full(n_frag, 2 / _TEX)
    return unit.filter_batch(0, u, v, dudx, dvdx, dudy, dvdy)


class TestBatchStructure:
    def test_csr_row_ptr_matches_n(self, unit):
        batch = _batch(unit)
        assert batch.sample_row_ptr[0] == 0
        assert np.array_equal(np.diff(batch.sample_row_ptr), batch.n)
        assert batch.sample_keys.shape == (batch.total_af_samples,)

    def test_af_lines_are_eight_per_sample(self, unit):
        batch = _batch(unit)
        assert batch.af_lines.shape == (
            batch.total_af_samples * TEXELS_PER_TRILINEAR,
        )

    def test_tf_lines_are_eight_per_fragment(self, unit):
        batch = _batch(unit, n_frag=10)
        assert batch.tf_lines.shape == (10, TEXELS_PER_TRILINEAR)
        assert batch.tf_af_lod_lines.shape == (10, TEXELS_PER_TRILINEAR)

    def test_empty_batch_rejected(self, unit):
        empty = np.array([])
        with pytest.raises(TextureError):
            unit.filter_batch(0, empty, empty, empty, empty, empty, empty)


class TestFilteringSemantics:
    def test_anisotropy_propagates(self, unit):
        batch = _batch(unit, aniso=4.0)
        assert (batch.n == 4).all()

    def test_af_color_differs_from_tf_on_anisotropic_batch(self, unit):
        batch = _batch(unit, aniso=8.0)
        assert np.abs(batch.af_color - batch.tf_color).max() > 0.01

    def test_isotropic_batch_af_equals_tf(self, unit):
        batch = _batch(unit, aniso=1.0)
        assert (batch.n == 1).all()
        assert np.allclose(batch.af_color, batch.tf_color, atol=1e-6)
        assert np.allclose(batch.af_color, batch.tf_af_lod_color, atol=1e-6)
        # With N=1 the two LOD variants fetch identical lines too.
        assert np.array_equal(batch.tf_lines, batch.tf_af_lod_lines)

    def test_af_lod_variant_fetches_finer_level(self, unit):
        batch = _batch(unit, aniso=8.0)
        assert np.all(batch.lod_af < batch.lod_tf)
        # Finer level -> different (lower) addresses than TF's level.
        assert not np.array_equal(batch.tf_lines, batch.tf_af_lod_lines)

    def test_colors_are_finite_unit_range(self, unit):
        batch = _batch(unit, n_frag=256, aniso=6.0)
        for arr in (batch.af_color, batch.tf_color, batch.tf_af_lod_color):
            assert np.all(np.isfinite(arr))
            assert arr.min() >= -1e-6 and arr.max() <= 1.0 + 1e-6
