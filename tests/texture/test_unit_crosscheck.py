"""Cross-checks of the texture unit's captured data against direct
per-fragment recomputation — the strongest consistency tests the
capture/evaluate split relies on."""

import numpy as np
import pytest

from repro.texture.addressing import TextureLayout
from repro.texture.anisotropic import aniso_sample_positions
from repro.texture.footprint import compute_footprints
from repro.texture.image import Texture2D
from repro.texture.mipmap import MipChain
from repro.texture.sampler import (
    texel_coords_from_info,
    trilinear_footprint_keys,
    trilinear_info,
    trilinear_sample,
)
from repro.texture.unit import TEXELS_PER_TRILINEAR, TextureUnit

_TEX = 128


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(77)
    chain = MipChain(Texture2D("cc", rng.random((_TEX, _TEX, 4))))
    layout = TextureLayout([chain])
    unit = TextureUnit(layout)
    n_frag = 48
    u = rng.random(n_frag)
    v = rng.random(n_frag)
    dudx = rng.uniform(1, 24, n_frag) / _TEX
    dvdx = np.zeros(n_frag)
    dudy = np.zeros(n_frag)
    dvdy = rng.uniform(1, 24, n_frag) / _TEX
    batch = unit.filter_batch(0, u, v, dudx, dvdx, dudy, dvdy)
    fp = compute_footprints(dudx, dvdx, dudy, dvdy, _TEX, _TEX,
                            max_level=chain.max_level)
    return chain, layout, batch, fp, u, v


class TestPerFragmentRecomputation:
    def test_tf_color_matches_direct_sampling(self, setup):
        chain, _, batch, fp, u, v = setup
        direct = trilinear_sample(chain, u, v, fp.lod_tf)
        assert np.allclose(batch.tf_color, direct, atol=1e-6)

    def test_tf_lines_match_direct_addressing(self, setup):
        chain, layout, batch, fp, u, v = setup
        info = trilinear_info(chain, u, v, fp.lod_tf)
        levels, iy, ix = texel_coords_from_info(info)
        addrs = layout.texel_addresses(0, levels, iy, ix)
        assert np.array_equal(batch.tf_lines,
                              TextureLayout.line_addresses(addrs))

    def test_af_color_matches_manual_average(self, setup):
        chain, _, batch, fp, u, v = setup
        for i in range(0, len(u), 7):  # spot-check a subset
            n = int(fp.n[i])
            su, sv = aniso_sample_positions(
                u[i : i + 1], v[i : i + 1],
                fp.major_du[i : i + 1], fp.major_dv[i : i + 1], n,
            )
            lod = np.full(su.shape, fp.lod_af[i])
            expected = trilinear_sample(chain, su, sv, lod).mean(axis=1)[0]
            assert np.allclose(batch.af_color[i], expected, atol=1e-6)

    def test_sample_keys_match_tf_lod_binning(self, setup):
        chain, _, batch, fp, u, v = setup
        for i in range(0, len(u), 11):
            n = int(fp.n[i])
            su, sv = aniso_sample_positions(
                u[i : i + 1], v[i : i + 1],
                fp.major_du[i : i + 1], fp.major_dv[i : i + 1], n,
            )
            lod = np.full(su.shape, fp.lod_tf[i])
            expected = trilinear_footprint_keys(chain, su, sv, lod)[0]
            lo = batch.sample_row_ptr[i]
            assert np.array_equal(
                batch.sample_keys[lo : lo + n], expected
            )

    def test_af_line_counts(self, setup):
        _, _, batch, fp, _, _ = setup
        assert batch.af_lines.size == int(fp.n.sum()) * TEXELS_PER_TRILINEAR
