"""CSR slot-math tests for the fused anisotropic batch kernel.

``filter_batch`` runs all fragments' AF samples through one flat CSR
pass; these tests pin the slot arithmetic: fragment ``i``'s samples
must occupy exactly ``values[row_ptr[i]:row_ptr[i+1]]`` and must equal
what a single-fragment batch of that fragment alone produces — for
colors, sample keys, and the 8-per-sample line addresses.
"""

import numpy as np
import pytest

from repro.texture.addressing import TextureLayout
from repro.texture.image import Texture2D
from repro.texture.mipmap import MipChain
from repro.texture.unit import TEXELS_PER_TRILINEAR, TextureUnit

_TEX = 128


@pytest.fixture(scope="module")
def unit():
    rng = np.random.default_rng(91)
    chain = MipChain(Texture2D("t", rng.random((_TEX, _TEX, 4))))
    return TextureUnit(TextureLayout([chain]))


def _mixed_gradients(n_frag, seed=5):
    """Per-fragment gradients spanning N=1 up to the default cap."""
    rng = np.random.default_rng(seed)
    u = rng.random(n_frag)
    v = rng.random(n_frag)
    aniso = rng.integers(1, 9, n_frag).astype(np.float64)
    dudx = aniso * 2 / _TEX
    dvdx = np.zeros(n_frag)
    dudy = np.zeros(n_frag)
    dvdy = np.full(n_frag, 2 / _TEX)
    return u, v, dudx, dvdx, dudy, dvdy


class TestMixedNSlots:
    def test_row_ptr_partitions_samples(self, unit):
        batch = unit.filter_batch(0, *_mixed_gradients(48))
        assert len(np.unique(batch.n)) > 1, "batch must mix N values"
        assert batch.sample_row_ptr[0] == 0
        assert np.array_equal(np.diff(batch.sample_row_ptr), batch.n)
        assert batch.sample_keys.shape == (batch.total_af_samples,)
        assert batch.af_lines.shape == (
            batch.total_af_samples * TEXELS_PER_TRILINEAR,
        )

    def test_each_fragment_slice_matches_solo_batch(self, unit):
        """The fused kernel must not permute samples across fragments."""
        args = _mixed_gradients(16)
        batch = unit.filter_batch(0, *args)
        ptr = batch.sample_row_ptr
        for i in range(16):
            solo = unit.filter_batch(0, *(np.atleast_1d(a[i]) for a in args))
            lo, hi = int(ptr[i]), int(ptr[i + 1])
            assert solo.total_af_samples == hi - lo
            assert np.array_equal(solo.sample_keys, batch.sample_keys[lo:hi])
            assert np.array_equal(
                solo.af_lines,
                batch.af_lines[
                    lo * TEXELS_PER_TRILINEAR:hi * TEXELS_PER_TRILINEAR
                ],
            )
            assert np.array_equal(solo.af_color[0], batch.af_color[i])

    def test_dedup_gathers_is_bit_identical(self, unit):
        args = _mixed_gradients(48)
        dedup = TextureUnit(unit.layout, dedup_gathers=True)
        a = unit.filter_batch(0, *args)
        b = dedup.filter_batch(0, *args)
        assert np.array_equal(a.af_color, b.af_color)
        assert np.array_equal(a.sample_keys, b.sample_keys)
        assert np.array_equal(a.af_lines, b.af_lines)


class TestDegenerateN:
    def test_all_n_equal_one(self, unit):
        n_frag = 32
        rng = np.random.default_rng(11)
        iso = np.full(n_frag, 2 / _TEX)
        batch = unit.filter_batch(
            0, rng.random(n_frag), rng.random(n_frag),
            iso, np.zeros(n_frag), np.zeros(n_frag), iso,
        )
        assert (batch.n == 1).all()
        assert np.array_equal(
            batch.sample_row_ptr, np.arange(n_frag + 1, dtype=np.int64)
        )
        assert batch.total_af_samples == n_frag
        assert batch.af_lines.shape == (n_frag * TEXELS_PER_TRILINEAR,)

    def test_max_aniso_clamps_rows(self, unit):
        clamped = TextureUnit(unit.layout, max_aniso=4)
        args = _mixed_gradients(48)
        batch = clamped.filter_batch(0, *args)
        assert batch.n.max() == 4
        assert np.array_equal(np.diff(batch.sample_row_ptr), batch.n)
        assert batch.total_af_samples == int(batch.n.sum())
        wide = unit.filter_batch(0, *args)
        # Clamping only shrinks rows, never reorders surviving ones.
        assert np.all(batch.n <= wide.n)
        assert batch.total_af_samples < wide.total_af_samples
