"""Tests for the discrete-event texture-pipeline validator."""

import numpy as np
import pytest

from repro.config import GpuConfig
from repro.core.patu import PerceptionAwareTextureUnit
from repro.core.scenarios import BASELINE, PATU
from repro.errors import PipelineError
from repro.timing.pipeline_sim import (
    QuadWork,
    TexturePipelineSimulator,
    quads_from_decision,
)


def _quad(samples=(4, 4, 4, 4), address=None, checked=False, misses=()):
    return QuadWork(
        samples_per_pixel=samples,
        address_samples=sum(samples) if address is None else address,
        checked=checked,
        miss_latencies=tuple(misses),
    )


@pytest.fixture(scope="module")
def sim():
    return TexturePipelineSimulator(GpuConfig())


class TestBasicPipeline:
    def test_single_quad_latency(self, sim):
        trace = sim.run([_quad()])
        assert trace.quads == 1
        assert trace.total_cycles > 0

    def test_throughput_bound_by_slowest_stage(self, sim):
        # Many identical quads: total time approaches quads x slowest
        # stage service (pipelining hides the other stages).
        quads = [_quad(samples=(8, 8, 8, 8))] * 50
        trace = sim.run(quads)
        filter_service = 8 * 2  # max samples x cycles_per_trilinear
        assert trace.total_cycles == pytest.approx(
            50 * filter_service, rel=0.15
        )
        assert trace.bottleneck == "filter"

    def test_more_work_takes_longer(self, sim):
        light = sim.run([_quad(samples=(1, 1, 1, 1))] * 20)
        heavy = sim.run([_quad(samples=(16, 16, 16, 16))] * 20)
        assert heavy.total_cycles > light.total_cycles

    def test_misses_add_stall_time(self, sim):
        clean = sim.run([_quad()] * 10)
        missy = sim.run([_quad(misses=[100.0] * 4)] * 10)
        assert missy.total_cycles > clean.total_cycles

    def test_mlp_bounds_overlap(self):
        # With MLP 1, misses serialize; with large MLP they overlap.
        from repro.timing.params import TimingParams
        import dataclasses

        serial = TexturePipelineSimulator(
            GpuConfig(), dataclasses.replace(TimingParams(), mlp_per_unit=1)
        )
        parallel = TexturePipelineSimulator(
            GpuConfig(), dataclasses.replace(TimingParams(), mlp_per_unit=32)
        )
        quads = [_quad(misses=[50.0] * 8)] * 6
        assert serial.run(quads).total_cycles > parallel.run(quads).total_cycles

    def test_empty_stream_rejected(self, sim):
        with pytest.raises(PipelineError):
            sim.run([])

    def test_quad_validation(self):
        with pytest.raises(PipelineError):
            QuadWork(samples_per_pixel=(1, 1, 1), address_samples=3, checked=False)
        with pytest.raises(PipelineError):
            QuadWork(samples_per_pixel=(1, 1, 1, -1), address_samples=2,
                     checked=False)


class TestDesignPointAgreement:
    """The event-driven model must agree with the analytic model on the
    *direction and rough size* of design-point differences."""

    def _trace(self, sim, scenario, threshold, n, txds, seed=7):
        device = PerceptionAwareTextureUnit(scenario, threshold)
        d = device.decide(n, txds)
        quads = quads_from_decision(
            n, d.trilinear_samples, d.address_samples,
            checked=scenario.use_stage1, seed=seed,
        )
        return sim.run(quads)

    def test_patu_faster_than_baseline(self, sim):
        rng = np.random.default_rng(3)
        n = rng.integers(1, 17, 256)
        txds = rng.random(256)
        base = self._trace(sim, BASELINE, 1.0, n, txds)
        patu = self._trace(sim, PATU, 0.4, n, txds)
        assert patu.total_cycles < base.total_cycles

    def test_speedup_matches_analytic_direction(self, sim):
        """Event-driven speedup within ~35% of the closed-form ratio."""
        rng = np.random.default_rng(11)
        n = rng.integers(1, 17, 512)
        txds = rng.random(512)
        base_device = PerceptionAwareTextureUnit(BASELINE, 1.0)
        patu_device = PerceptionAwareTextureUnit(PATU, 0.4)
        base_d = base_device.decide(n, txds)
        patu_d = patu_device.decide(n, txds)

        base_trace = self._trace(sim, BASELINE, 1.0, n, txds)
        patu_trace = self._trace(sim, PATU, 0.4, n, txds)
        event_speedup = base_trace.total_cycles / patu_trace.total_cycles
        # Analytic compute-bound ratio: filtering work is the slowest
        # stage in this synthetic (low-miss) setting, and the pipeline
        # is bounded by each quad's max pixel, not the mean.
        analytic = base_d.total_trilinear / max(patu_d.total_trilinear, 1)
        assert event_speedup > 1.0
        assert event_speedup == pytest.approx(analytic, rel=0.35)


class TestQuadGrouping:
    def test_packs_four_pixels_per_quad(self):
        n = np.asarray([4] * 10)
        quads = quads_from_decision(n, n, n, checked=False)
        assert len(quads) == 3  # 4 + 4 + 2(padded)
        assert quads[-1].samples_per_pixel[2:] == (0, 0)

    def test_deterministic(self):
        n = np.asarray([8] * 16)
        a = quads_from_decision(n, n, n, checked=True, seed=5)
        b = quads_from_decision(n, n, n, checked=True, seed=5)
        assert [q.miss_latencies for q in a] == [q.miss_latencies for q in b]

    def test_alignment_validated(self):
        with pytest.raises(PipelineError):
            quads_from_decision(
                np.ones(4), np.ones(3), np.ones(4), checked=False
            )
