"""Tests for the texture-pipeline and GPU timing models."""

import pytest

from repro.config import GpuConfig
from repro.errors import PipelineError
from repro.memsys.cache import CacheStats
from repro.memsys.dram import DramStats
from repro.memsys.hierarchy import HierarchyStats
from repro.timing.gpu_timing import FrameTiming, FrameWorkload, GpuTimingModel
from repro.timing.params import TimingParams
from repro.timing.texpipe import TexturePipelineModel


def _hier(l1_acc=1000, l1_hits=900, l2_acc=100, l2_hits=80, dram_lines=20):
    h = HierarchyStats()
    h.l1 = CacheStats(accesses=l1_acc, hits=l1_hits)
    h.l2 = CacheStats(accesses=l2_acc, hits=l2_hits)
    h.dram = DramStats(lines_fetched=dram_lines, row_hits=dram_lines // 2)
    return h


def _timing(model, samples=1000, addr=None, checked=0, hier=None):
    hier = hier or _hier()
    return model.frame_timing(
        trilinear_samples=samples,
        address_samples=addr if addr is not None else samples,
        checked_pixels=checked,
        hier=hier,
        dram_transfer_cycles=hier.dram.bytes_fetched / 16,
        dram_latency=150.0,
    )


class TestTexturePipeline:
    def test_filter_throughput_table1(self):
        cfg = GpuConfig()
        model = TexturePipelineModel(cfg)
        t = _timing(model, samples=1600)
        # 2 cycles per trilinear over 16 pipelines.
        assert t.filter_cycles == pytest.approx(1600 * 2 / 16)

    def test_busy_is_bottleneck_composition(self):
        model = TexturePipelineModel(GpuConfig())
        t = _timing(model)
        assert t.busy_cycles == max(
            t.compute_cycles, t.latency_cycles, t.bandwidth_cycles
        )

    def test_more_samples_more_compute(self):
        model = TexturePipelineModel(GpuConfig())
        assert (
            _timing(model, samples=2000).filter_cycles
            > _timing(model, samples=1000).filter_cycles
        )

    def test_patu_checks_add_compute(self):
        model = TexturePipelineModel(GpuConfig())
        with_checks = _timing(model, checked=10_000)
        without = _timing(model, checked=0)
        assert with_checks.compute_cycles > without.compute_cycles

    def test_l1_hits_cost_no_occupancy(self):
        model = TexturePipelineModel(GpuConfig())
        hot = _timing(model, hier=_hier(l1_acc=10_000, l1_hits=10_000,
                                        l2_acc=0, l2_hits=0, dram_lines=0))
        assert hot.latency_cycles == 0.0

    def test_negative_counts_rejected(self):
        model = TexturePipelineModel(GpuConfig())
        with pytest.raises(PipelineError):
            _timing(model, samples=-1)

    def test_request_latency_decreases_with_fewer_samples(self):
        model = TexturePipelineModel(GpuConfig())
        t = _timing(model)
        many = model.request_latency(
            t, num_requests=100, trilinear_samples=800, hier=_hier(),
            dram_latency=150.0,
        )
        few = model.request_latency(
            t, num_requests=100, trilinear_samples=100, hier=_hier(),
            dram_latency=150.0,
        )
        assert few < many

    def test_request_latency_has_fixed_floor(self):
        p = TimingParams()
        model = TexturePipelineModel(GpuConfig(), p)
        t = _timing(model)
        ideal = model.request_latency(
            t, num_requests=1000, trilinear_samples=1000,
            hier=_hier(l1_acc=8000, l1_hits=8000, l2_acc=0, l2_hits=0,
                       dram_lines=0),
            dram_latency=150.0,
        )
        assert ideal >= p.request_fixed_cycles + p.l1_hit_latency


class TestGpuTiming:
    def _workload(self, frags=10_000):
        return FrameWorkload(
            vertices=500,
            triangles=300,
            tile_triangle_pairs=900,
            fragments_generated=frags,
            fragments_shaded=frags,
        )

    def test_total_is_sum_of_phases(self):
        model = GpuTimingModel(GpuConfig())
        tex = _timing(TexturePipelineModel(GpuConfig()))
        ft = model.frame_timing(self._workload(), tex)
        assert ft.total_cycles == pytest.approx(
            ft.geometry_cycles + ft.raster_cycles
            + ft.fragment_phase_cycles + ft.fixed_cycles
        )

    def test_fragment_phase_partial_overlap(self):
        ft = FrameTiming(
            geometry_cycles=0, raster_cycles=0, shader_cycles=100,
            texture_busy_cycles=60, fixed_cycles=0, texture_overlap=0.35,
        )
        assert ft.fragment_phase_cycles == pytest.approx(100 + 0.65 * 60)

    def test_perfect_overlap_is_max(self):
        ft = FrameTiming(
            geometry_cycles=0, raster_cycles=0, shader_cycles=100,
            texture_busy_cycles=60, fixed_cycles=0, texture_overlap=1.0,
        )
        assert ft.fragment_phase_cycles == pytest.approx(100)

    def test_fps_inversely_proportional_to_cycles(self):
        model = GpuTimingModel(GpuConfig())
        tex = _timing(TexturePipelineModel(GpuConfig()))
        small = model.frame_timing(self._workload(1000), tex)
        large = model.frame_timing(self._workload(1_000_000), tex)
        assert model.fps(small) > model.fps(large)

    def test_negative_workload_rejected(self):
        with pytest.raises(PipelineError):
            FrameWorkload(
                vertices=-1, triangles=0, tile_triangle_pairs=0,
                fragments_generated=0, fragments_shaded=0,
            )
