"""The ``repro verify`` CLI: report files, filters, goldens workflow."""

import json

import pytest

from repro.cli import main
from repro.verify import run_verify
from repro.verify.report import REPORT_SCHEMA


def test_verify_list_oracles(capsys):
    assert main(["verify", "--list"]) == 0
    out = capsys.readouterr().out
    assert "bilinear" in out and "differential" in out
    assert "golden" in out


def test_verify_only_filter_writes_report(tmp_path, capsys):
    report_path = tmp_path / "report.json"
    rc = main([
        "verify", "--only", "af_ssim_n", "--report", str(report_path),
    ])
    assert rc == 0
    data = json.loads(report_path.read_text())
    assert data["schema"] == REPORT_SCHEMA
    assert data["passed"] is True
    assert data["oracles_run"] == 1
    assert data["oracles"][0]["name"] == "diff_af_ssim_n"
    assert data["oracles"][0]["fragments"] >= 1000
    assert "PASS" in capsys.readouterr().out


def test_verify_layer_filter_runs_whole_layer():
    from repro.verify.differential import DIFFERENTIAL_ORACLES

    report = run_verify(only="differential")
    assert len(report.results) == len(DIFFERENTIAL_ORACLES)
    assert report.passed
    assert {r.layer for r in report.results} == {"differential"}


def test_verify_report_totals_are_consistent():
    report = run_verify(only="differential")
    data = report.to_dict()
    assert data["fragments_checked"] == sum(
        o["fragments"] for o in data["oracles"]
    )
    assert data["oracles_failed"] == 0


@pytest.mark.slow
def test_verify_quick_end_to_end_and_golden_idempotency(tmp_path, capsys):
    goldens = tmp_path / "goldens"
    args = ["verify", "--quick", "--goldens", str(goldens),
            "--report", str(tmp_path / "r.json")]
    # First update generates every golden...
    assert main(args + ["--update-goldens"]) == 0
    capsys.readouterr()  # drain; only the second run's output matters
    manifest = (goldens / "manifest.json").read_bytes()
    # ...the second is a byte-level no-op (acceptance criterion)...
    assert main(args + ["--update-goldens"]) == 0
    second = capsys.readouterr()
    assert "none (already up to date)" in second.err
    assert (goldens / "manifest.json").read_bytes() == manifest
    # ...and a plain check run against them passes.
    assert main(args) == 0
    data = json.loads((tmp_path / "r.json").read_text())
    assert data["passed"] is True
    golden = [o for o in data["oracles"] if o["layer"] == "golden"]
    assert golden and all(o["status"] == "PASS" for o in golden)
