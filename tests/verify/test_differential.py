"""Differential oracle layer: scalar reference vs vectorized kernels.

The full layer is cheap (pure math on ~1200 fragments per kernel), so
tier-1 runs every oracle; the multi-seed sweep is marked ``slow``.
"""

import pytest

from repro.verify.differential import (
    COLOR_TOL,
    DIFFERENTIAL_ORACLES,
    FRAGMENTS,
    PREDICTOR_TOL,
)
from repro.verify.report import LAYER_DIFFERENTIAL, VerifyConfig


@pytest.mark.parametrize(
    "oracle", DIFFERENTIAL_ORACLES, ids=lambda fn: fn.__name__
)
def test_oracle_passes_at_default_seed(oracle):
    result = oracle(VerifyConfig(seed=0))
    assert result.layer == LAYER_DIFFERENTIAL
    assert result.passed, result.details
    assert result.fragments >= 1000  # acceptance: >= 1000 per kernel


def test_color_oracles_report_error_within_tolerance():
    for oracle in DIFFERENTIAL_ORACLES:
        result = oracle(VerifyConfig(seed=0))
        bound = COLOR_TOL if "color" in str(result.details) else max(
            COLOR_TOL, PREDICTOR_TOL
        )
        assert result.max_error <= bound


def test_integer_oracles_are_exact():
    by_name = {fn.__name__: fn for fn in DIFFERENTIAL_ORACLES}
    for name in ("oracle_footprint", "oracle_two_stage"):
        result = by_name[name](VerifyConfig(seed=0))
        assert result.passed
        assert result.max_error == 0.0


def test_fragment_budget_constant():
    assert FRAGMENTS >= 1000


@pytest.mark.slow
@pytest.mark.parametrize("seed", [1, 17, 4242])
def test_oracles_pass_across_seeds(seed):
    for oracle in DIFFERENTIAL_ORACLES:
        result = oracle(VerifyConfig(seed=seed))
        assert result.passed, (oracle.__name__, seed, result.details)
