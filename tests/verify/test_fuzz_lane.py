"""The fuzz verify lane: oracle wiring, shrinking, mutation detection.

The lane's acceptance contract is sensitivity: a deliberately broken
kernel must not only fail a generated scenario but come back as a
*shrunk minimal spec* — the artifact a developer actually debugs from.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib

from repro.verify import check_fuzz_spec, list_oracles, shrink_spec
from repro.verify.fuzz import FUZZ_ORACLES, oracle_fuzz_scenarios
from repro.verify.report import LAYER_FUZZ, VerifyConfig
from repro.workloads.fuzz import MIN_DIM, FuzzSpec, spec_for


class TestOracleRegistration:
    def test_fuzz_oracle_is_registered_with_its_layer(self):
        assert ("fuzz_scenarios", LAYER_FUZZ) in list_oracles()

    def test_lane_is_skipped_when_disabled(self):
        (oracle,) = FUZZ_ORACLES
        result = oracle(VerifyConfig(seed=0, fuzz=0))
        assert result.skipped and result.passed

    def test_a_generated_scenario_passes_every_check(self):
        outcome = check_fuzz_spec(spec_for(11, "grazing"))
        assert outcome["passed"], outcome["failed"]
        assert outcome["pixels"] > 0
        assert set(outcome["checks"]) == {
            "raster_bit_identity", "differential_footprint",
            "metamorphic_rotation", "metamorphic_af_self",
            "metamorphic_monotone",
        }


class TestShrinking:
    def test_monotone_predicate_reaches_the_minimum(self):
        # A failure that reproduces on every reduction shrinks to the
        # global minimum of every axis.
        spec = spec_for(4, "slivers")
        minimal = shrink_spec(spec, lambda s: True)
        assert minimal.meshes == 0 and minimal.slivers == 0
        assert minimal.frames == 1
        assert minimal.uv_regime == "normal" and minimal.camera == "forward"
        assert minimal.tex_stress == 1.0
        assert minimal.width == MIN_DIM and minimal.height == MIN_DIM

    def test_axis_coupled_failure_keeps_the_guilty_axis(self):
        spec = spec_for(4, "slivers")
        assert spec.slivers > 0
        minimal = shrink_spec(spec, lambda s: s.slivers > 0)
        assert minimal.slivers == 1  # halved down to, never past, 1
        assert minimal.meshes == 0  # unrelated axes still collapse

    def test_budget_bounds_the_evaluations(self):
        calls = []

        def predicate(s):
            calls.append(s)
            return True

        shrink_spec(spec_for(4, "slivers"), predicate, budget=5)
        assert len(calls) == 5

    def test_never_fails_predicate_returns_the_original(self):
        spec = spec_for(4)
        assert shrink_spec(spec, lambda s: False) == spec


class TestBrokenKernelMutation:
    def test_mutated_kernel_yields_a_shrunk_minimal_spec(
        self, monkeypatch, tmp_path
    ):
        """Acceptance: an in-test kernel mutation is caught by the lane
        and reported as a minimal repro, saved to the corpus dir."""
        import repro.verify.fuzz as lane

        real = lane.compute_footprints

        def broken(*args, **kwargs):
            fp = real(*args, **kwargs)
            return dataclasses.replace(fp, n=fp.n + 1)  # off-by-one N

        monkeypatch.setattr(lane, "compute_footprints", broken)
        result = oracle_fuzz_scenarios(
            VerifyConfig(seed=0, fuzz=1, fuzz_save=tmp_path)
        )
        assert not result.passed
        (failure,) = result.details["failures"]
        assert failure["failed"] == ["differential_footprint"]
        # The shrinker collapsed every axis: the bug reproduces on a
        # bare ground plane at the smallest legal resolution.
        minimal = FuzzSpec.from_dict(failure["minimal_spec"])
        assert minimal.meshes == 0 and minimal.frames == 1
        assert minimal.width == MIN_DIM and minimal.height == MIN_DIM
        # ...and the corpus entry landed on disk, replayable.
        (saved,) = result.details["saved"]
        entry = json.loads(pathlib.Path(saved).read_text())
        assert entry["failed"] == ["differential_footprint"]
        assert entry["minimal_spec"] == failure["minimal_spec"]

    def test_unmutated_lane_passes_the_same_scenario(self):
        result = oracle_fuzz_scenarios(VerifyConfig(seed=0, fuzz=1))
        assert result.passed and not result.details["failures"]
