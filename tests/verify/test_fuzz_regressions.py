"""Replay the fuzz regression corpus through the full oracle stack.

Every file under ``tests/goldens/fuzz_regressions/`` is a scenario the
fuzz lane once shrank from a real failure (``repro verify --fuzz N
--fuzz-save`` writes them). Replaying both the original and the
minimal spec through :func:`repro.verify.check_fuzz_spec` — the exact
code path that found them — turns each past bug into a permanent
tier-1 gate.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.verify import check_fuzz_spec
from repro.verify.fuzz import CORPUS_SCHEMA
from repro.workloads.fuzz import FuzzSpec

CORPUS = pathlib.Path(__file__).resolve().parents[1] / "goldens" / "fuzz_regressions"


def corpus_entries():
    return sorted(CORPUS.glob("*.json"))


def test_corpus_is_not_empty():
    # The replayer must never silently pass because the directory
    # vanished; at least the bring-up entry is committed.
    assert corpus_entries(), f"no corpus files under {CORPUS}"


@pytest.mark.parametrize(
    "path", corpus_entries(), ids=lambda p: p.stem
)
class TestCorpusReplay:
    def test_entry_is_well_formed(self, path):
        entry = json.loads(path.read_text())
        assert entry["schema"] == CORPUS_SCHEMA
        assert entry["failed"], "corpus entry must name its failing checks"
        # Both specs must still parse and stay within generator bounds.
        FuzzSpec.from_dict(entry["spec"])
        FuzzSpec.from_dict(entry["minimal_spec"])

    def test_minimal_spec_passes_the_oracle_stack(self, path):
        entry = json.loads(path.read_text())
        outcome = check_fuzz_spec(FuzzSpec.from_dict(entry["minimal_spec"]))
        assert outcome["passed"], (
            f"regression resurfaced: {path.name} fails "
            f"{outcome['failed']} again (originally {entry['failed']})"
        )

    def test_original_spec_passes_the_oracle_stack(self, path):
        entry = json.loads(path.read_text())
        outcome = check_fuzz_spec(FuzzSpec.from_dict(entry["spec"]))
        assert outcome["passed"], (
            f"regression resurfaced: {path.name} fails "
            f"{outcome['failed']} again (originally {entry['failed']})"
        )
