"""Golden-artifact manager: manifest, check/update lifecycle, digests."""

import json


from repro.verify.goldens import (
    GOLDEN_EXPERIMENTS,
    GoldenStore,
    STATUS_MATCH,
    STATUS_MISSING,
    STATUS_PARAMS_MISMATCH,
    STATUS_STALE,
    check_experiment_golden,
    default_goldens_root,
    frame_digest_text,
)

PARAMS = {"scale": 0.5, "frames": 1}


def test_missing_then_update_then_match(tmp_path):
    store = GoldenStore(tmp_path)
    assert store.check("t1", "hello\n", PARAMS).status == STATUS_MISSING
    assert store.update("t1", "hello\n", "table", PARAMS) is True
    check = store.check("t1", "hello\n", PARAMS)
    assert check.status == STATUS_MATCH and check.ok


def test_update_is_idempotent(tmp_path):
    store = GoldenStore(tmp_path)
    assert store.update("t1", "hello\n", "table", PARAMS) is True
    manifest_before = store.manifest_path.read_bytes()
    artifact_before = store.artifact_path("t1").read_bytes()
    # Second identical update: no-op, bytes untouched.
    assert store.update("t1", "hello\n", "table", PARAMS) is False
    assert store.manifest_path.read_bytes() == manifest_before
    assert store.artifact_path("t1").read_bytes() == artifact_before


def test_stale_golden_reports_diff(tmp_path):
    store = GoldenStore(tmp_path)
    store.update("t1", "row a\nrow b\n", "table", PARAMS)
    check = store.check("t1", "row a\nrow CHANGED\n", PARAMS)
    assert check.status == STATUS_STALE and not check.ok
    assert "-row b" in check.diff and "+row CHANGED" in check.diff
    assert check.details["stored_sha256"] != check.details["regenerated_sha256"]


def test_params_mismatch_is_not_stale(tmp_path):
    store = GoldenStore(tmp_path)
    store.update("t1", "hello\n", "table", PARAMS)
    check = store.check("t1", "anything\n", {"scale": 0.25, "frames": 1})
    assert check.status == STATUS_PARAMS_MISMATCH
    assert check.details["stored"] == PARAMS


def test_manifest_layout_is_sorted_and_versioned(tmp_path):
    store = GoldenStore(tmp_path)
    store.update("zz", "z\n", "table", PARAMS)
    store.update("aa", "a\n", "frame", PARAMS)
    data = json.loads(store.manifest_path.read_text())
    assert data["version"] == 1
    assert list(data["entries"]) == ["aa", "zz"]
    assert data["entries"]["aa"]["kind"] == "frame"
    assert len(data["entries"]["aa"]["sha256"]) == 64


def test_frame_digest_text_is_deterministic_and_sensitive(capture):
    text1 = frame_digest_text(capture)
    text2 = frame_digest_text(capture)
    assert text1 == text2
    assert "af_color" in text1 and "sample_keys" in text1
    # Perturb one array -> exactly that line's digest moves.
    mutated = capture.af_color.copy()
    mutated[0, 0] += 0.5
    original = capture.af_color
    capture.af_color = mutated
    try:
        text3 = frame_digest_text(capture)
    finally:
        capture.af_color = original
    changed = [
        (a, b)
        for a, b in zip(text1.splitlines(), text3.splitlines())
        if a != b
    ]
    assert len(changed) == 1 and changed[0][0].startswith("af_color")


def test_check_experiment_golden_ignores_unpinned_runs(capture):
    class Ctx:
        scale = 0.25
        frames = 2
        workload_list = ("HL2-640x480",)

    # Unknown experiment id -> not comparable.
    assert check_experiment_golden("nope", Ctx(), "text\n") is None
    # Known id but params differ from the pinned golden -> not comparable.
    assert check_experiment_golden("fig17", Ctx(), "text\n") is None


def test_check_experiment_golden_detects_staleness(tmp_path, monkeypatch):
    from repro.obs import TELEMETRY
    from repro.verify import goldens as goldens_mod

    params = GOLDEN_EXPERIMENTS["fig17"]

    class Ctx:
        scale = params["scale"]
        frames = params["frames"]
        workload_list = tuple(params["workloads"])

    store = GoldenStore(tmp_path)
    store.update("table_fig17", "old table\n", "table", dict(params))
    monkeypatch.setattr(goldens_mod, "default_goldens_root", lambda: tmp_path)

    TELEMETRY.enabled = True
    try:
        check = check_experiment_golden("fig17", Ctx(), "new table\n")
        assert check is not None and check.status == STATUS_STALE
        assert TELEMETRY.counter_value("verify.stale_goldens") == 1
        # Matching bytes -> clean probe, no further counting.
        check = check_experiment_golden("fig17", Ctx(), "old table\n")
        assert check.status == STATUS_MATCH
        assert TELEMETRY.counter_value("verify.stale_goldens") == 1
    finally:
        TELEMETRY.enabled = False


def test_default_root_points_into_repo_tests():
    root = default_goldens_root()
    assert root.parts[-2:] == ("tests", "goldens")


def test_golden_experiment_specs_are_plain_json():
    # Specs are stored in manifests verbatim; keep them JSON-native.
    for spec in GOLDEN_EXPERIMENTS.values():
        assert json.loads(json.dumps(spec)) == spec
