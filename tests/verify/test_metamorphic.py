"""Metamorphic property checks against the miniature test scene.

The pure ``check_*`` helpers run here on the shared conftest capture
(fast, no game-scene rendering); the full oracle wrappers — which
render a Table II workload and spawn a process pool — are ``slow``.
"""

import numpy as np
import pytest

from repro.verify.metamorphic import (
    METAMORPHIC_ORACLES,
    check_af_self_similarity,
    check_lod_shift_localized,
    check_rotation_invariance,
    check_threshold_monotone,
)
from repro.verify.report import VerifyConfig


def test_af_self_similarity_on_mini_scene(session, capture):
    outcome = check_af_self_similarity(session, capture)
    assert outcome["passed"], outcome
    assert outcome["max_error"] == 0.0
    assert outcome["luminance_identical"]


def test_rotation_invariance_random_derivatives(rng):
    mag = 10.0 ** rng.uniform(-4.0, -0.5, (400, 4))
    derivs = mag * rng.choice([-1.0, 1.0], (400, 4))
    outcome = check_rotation_invariance(derivs, 64)
    assert outcome["passed"], outcome


def test_threshold_monotone_on_mini_scene(capture):
    thresholds = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)
    outcome = check_threshold_monotone(capture.n, capture.txds, thresholds)
    assert outcome["passed"], outcome
    counts = outcome["counts"]
    # Threshold 1.0 approximates nothing (predictions are <= 1).
    assert counts[-1] == 0
    assert counts == sorted(counts, reverse=True)


def test_threshold_monotone_synthetic_violator_detected():
    # Sanity: the checker is not vacuous — feed it decisions that DO
    # change with threshold and confirm the counts move.
    n = np.asarray([1, 2, 4, 8, 16], dtype=np.int32)
    txds = np.full(5, 0.5)
    outcome = check_threshold_monotone(n, txds, (0.0, 0.5, 0.9, 1.0))
    assert outcome["passed"]
    assert outcome["counts"][0] > outcome["counts"][-1]


def test_lod_shift_localized_on_mini_scene(capture):
    for threshold in (0.1, 0.4, 0.9):
        outcome = check_lod_shift_localized(capture, threshold)
        assert outcome["passed"], (threshold, outcome)
        # Re-colored pixels exist at permissive thresholds and are all
        # inside the approximated set.
        assert outcome["recolored"] <= outcome["approximated"]


@pytest.mark.slow
@pytest.mark.parametrize(
    "oracle", METAMORPHIC_ORACLES, ids=lambda fn: fn.__name__
)
def test_full_oracles_pass(oracle):
    result = oracle(VerifyConfig(seed=0, quick=False))
    assert result.passed or result.skipped, result.details
