"""The scalar reference oracle itself, checked against closed forms.

The reference must be trustworthy *independently* of the vectorized
code it cross-checks, so these tests only use inputs with analytically
known answers (constant textures, texel centers, degenerate key sets).
"""

import math

import numpy as np
import pytest

from repro.texture.image import Texture2D
from repro.texture.mipmap import MipChain
from repro.verify.reference import (
    ref_af_ssim_n,
    ref_af_ssim_txds,
    ref_anisotropic,
    ref_bilinear,
    ref_compute_footprint,
    ref_trilinear,
    ref_trilinear_levels,
    ref_two_stage_decision,
    ref_txds,
)


@pytest.fixture(scope="module")
def const_chain():
    data = np.full((16, 16, 4), 0.25, dtype=np.float32)
    data[..., 3] = 1.0
    return MipChain(Texture2D("const", data))


def test_bilinear_constant_texture_is_constant(const_chain):
    for u, v in ((0.1, 0.9), (-0.3, 2.7), (0.5, 0.5)):
        color = ref_bilinear(const_chain, 0, u, v)
        np.testing.assert_allclose(color[:3], 0.25, atol=1e-15)
        assert color[3] == pytest.approx(1.0)


def test_bilinear_texel_center_is_exact():
    data = np.zeros((4, 4, 4), dtype=np.float32)
    data[1, 2] = (0.2, 0.4, 0.6, 1.0)
    chain = MipChain(Texture2D("pt", data))
    # Texel (row 1, col 2) has its center at u=(2+0.5)/4, v=(1+0.5)/4.
    color = ref_bilinear(chain, 0, 2.5 / 4.0, 1.5 / 4.0)
    np.testing.assert_allclose(color, [0.2, 0.4, 0.6, 1.0], atol=1e-12)


def test_trilinear_levels_clamp_and_blend(const_chain):
    assert ref_trilinear_levels(const_chain, -3.0) == (0, 1, 0.0)
    l0, l1, frac = ref_trilinear_levels(const_chain, 1.25)
    assert (l0, l1) == (1, 2)
    assert frac == pytest.approx(0.25)
    top = const_chain.max_level
    assert ref_trilinear_levels(const_chain, top + 5.0) == (top, top, 0.0)


def test_trilinear_interpolates_between_levels():
    # Level 0 all zeros, level 1 all ones -> lod 0.5 blends to 0.5.
    chain = MipChain(Texture2D("ramp", np.zeros((8, 8, 4), dtype=np.float32)))
    chain.levels[1] = np.ones_like(chain.levels[1])
    color = ref_trilinear(chain, 0.5, 0.5, 0.5)
    np.testing.assert_allclose(color, 0.5, atol=1e-12)


def test_footprint_isotropic_and_anisotropic():
    iso = ref_compute_footprint(1 / 16, 0.0, 0.0, 1 / 16, 16, 16)
    assert iso["n"] == 1
    assert iso["lod_tf"] == pytest.approx(0.0)
    # 4:1 anisotropy: major axis 4 texels, minor 1.
    aniso = ref_compute_footprint(4 / 16, 0.0, 0.0, 1 / 16, 16, 16)
    assert aniso["n"] == 4
    assert aniso["lod_tf"] == pytest.approx(2.0)
    assert aniso["lod_af"] == pytest.approx(0.0)
    assert (aniso["major_du"], aniso["major_dv"]) == (4 / 16, 0.0)


def test_footprint_clamps_to_max_aniso():
    fp = ref_compute_footprint(64 / 16, 0.0, 0.0, 1 / 16, 16, 16, max_aniso=16)
    assert fp["n"] == 16


def test_anisotropic_n1_equals_trilinear(const_chain):
    a = ref_anisotropic(const_chain, 0.3, 0.7, 0.1, 0.0, 0.0, 1)
    t = ref_trilinear(const_chain, 0.3, 0.7, 0.0)
    np.testing.assert_array_equal(a, t)


def test_af_ssim_n_closed_form():
    assert ref_af_ssim_n(1) == pytest.approx(1.0)
    assert ref_af_ssim_n(2) == pytest.approx((4.0 / 5.0) ** 2)
    # Monotone decreasing in N beyond 1.
    values = [ref_af_ssim_n(n) for n in range(1, 17)]
    assert all(a > b for a, b in zip(values, values[1:]))


def test_txds_degenerate_and_extremes():
    assert ref_txds([7]) == 1.0  # single sample: nothing to share
    assert ref_txds([5, 5, 5, 5]) == pytest.approx(1.0)  # all shared
    assert ref_txds([1, 2, 3, 4]) == pytest.approx(0.0)  # all distinct
    # Half shared: entropy 1 bit over log2(4)=2 bits -> Txds = 0.5.
    assert ref_txds([9, 9, 8, 8]) == pytest.approx(0.5)
    assert ref_af_ssim_txds(1.0) == pytest.approx(1.0)


def test_two_stage_gating():
    # N <= 1 never checked.
    assert ref_two_stage_decision(1, 0.0, 0.0) == (False, False)
    # Stage 1 fires on similar-enough N.
    s1, s2 = ref_two_stage_decision(2, 0.0, 0.5)
    assert s1 and not s2
    # Stage 1 misses, stage 2 rescues via Txds.
    s1, s2 = ref_two_stage_decision(8, 0.95, 0.5)
    assert not s1 and s2
    # Stage 2 disabled -> no rescue.
    s1, s2 = ref_two_stage_decision(8, 0.95, 0.5, use_stage2=False)
    assert not s1 and not s2
    # Split thresholds: stage 2 judged against its own threshold.
    s1, s2 = ref_two_stage_decision(8, 0.95, 0.99, stage2_threshold=0.5)
    assert not s1 and s2


def test_reference_uses_float64():
    chain = MipChain(
        Texture2D("f32", np.random.default_rng(0)
                  .random((8, 8, 4)).astype(np.float32))
    )
    assert ref_bilinear(chain, 0, 0.3, 0.4).dtype == np.float64
    assert ref_trilinear(chain, 0.3, 0.4, 0.7).dtype == np.float64


def test_txds_matches_entropy_definition():
    keys = [1, 1, 2, 3, 3, 3, 4, 4]
    n = len(keys)
    probs = [keys.count(k) / n for k in set(keys)]
    h = -sum(p * math.log2(p) for p in probs)
    assert ref_txds(keys) == pytest.approx(1.0 - h / math.log2(n))
