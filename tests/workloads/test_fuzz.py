"""Fuzz scenario generator: determinism, validity, resolver wiring.

The generator's contract is what makes ``fuzz@<seed>`` usable as an
engine identity: the same request name must rebuild a byte-identical
scene and camera path in any process (job hashes, capture-store keys
and checkpoint fingerprints all assume it), and every generated scene
must be renderable without special cases.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.engine.worker import resolve_workload
from repro.errors import WorkloadError
from repro.workloads.fuzz import (
    CAMERA_FAMILIES,
    MAX_FRAMES,
    PROFILES,
    UV_REGIMES,
    FuzzSpec,
    build_camera_path,
    build_scene,
    fuzz_request,
    fuzz_workload,
    parse_fuzz_request,
    spec_for,
)

_settings = settings(
    max_examples=20, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

seeds = st.integers(min_value=0, max_value=10_000)
profiles = st.sampled_from(PROFILES)


def scene_bytes(scene) -> bytes:
    """A byte fingerprint of every mesh's geometry and UVs."""
    parts = []
    for mesh in scene.meshes:
        parts.append(mesh.texture.encode())
        parts.append(np.ascontiguousarray(mesh.vertices.positions).tobytes())
        parts.append(np.ascontiguousarray(mesh.vertices.uvs).tobytes())
        parts.append(np.ascontiguousarray(mesh.indices).tobytes())
    return b"|".join(parts)


class TestSpecDerivation:
    @_settings
    @given(seed=seeds, profile=profiles)
    def test_same_seed_same_spec(self, seed, profile):
        a = spec_for(seed, profile)
        b = spec_for(seed, profile)
        assert a == b
        assert a.to_dict() == b.to_dict()
        assert FuzzSpec.from_dict(a.to_dict()) == a

    @_settings
    @given(seed=seeds, profile=profiles)
    def test_specs_stay_in_bounds(self, seed, profile):
        spec = spec_for(seed, profile)
        assert spec.camera in CAMERA_FAMILIES
        assert spec.uv_regime in UV_REGIMES
        assert 1 <= spec.frames <= MAX_FRAMES

    def test_profiles_shape_distinct_specs(self):
        derived = {PROFILES[0]: spec_for(3)}
        for profile in PROFILES[1:]:
            derived[profile] = spec_for(3, profile)
        assert len(set(derived.values())) == len(PROFILES)


class TestSceneDeterminism:
    @_settings
    @given(seed=seeds, profile=profiles)
    def test_scene_rebuilds_byte_identical(self, seed, profile):
        spec = spec_for(seed, profile)
        assert scene_bytes(build_scene(spec)) == scene_bytes(build_scene(spec))

    @_settings
    @given(seed=seeds, profile=profiles)
    def test_scene_always_validates(self, seed, profile):
        scene = build_scene(spec_for(seed, profile))
        scene.validate()
        assert scene.total_triangles > 0

    def test_shrunk_empty_soup_still_validates(self):
        # The shrinker reduces meshes/slivers to 0; the ground plane
        # keeps even the minimal spec a legal scene.
        spec = FuzzSpec(seed=0, meshes=0, slivers=0)
        build_scene(spec).validate()

    @_settings
    @given(seed=seeds, profile=profiles)
    def test_camera_path_rebuilds_identically(self, seed, profile):
        spec = spec_for(seed, profile)
        path_a, path_b = build_camera_path(spec), build_camera_path(spec)
        for frame in range(spec.frames):
            assert path_a(frame) == path_b(frame)


class TestResolver:
    def test_request_round_trips(self):
        assert parse_fuzz_request("fuzz@17") == (17, "default")
        assert parse_fuzz_request("fuzz@17:grazing") == (17, "grazing")
        assert fuzz_request(17) == "fuzz@17"
        assert fuzz_request(17, "grazing") == "fuzz@17:grazing"
        assert parse_fuzz_request(fuzz_request(5, "slivers")) == (5, "slivers")

    @pytest.mark.parametrize("bad", [
        "fuzz@", "fuzz@x", "fuzz@-1", "fuzz@3:nope", "fuzz@3:",
    ])
    def test_malformed_requests_raise(self, bad):
        with pytest.raises(WorkloadError):
            parse_fuzz_request(bad)

    def test_engine_resolver_builds_the_workload(self):
        workload = resolve_workload("fuzz@7:grazing")
        assert workload.name == fuzz_workload(7, "grazing").name
        assert workload.library == "fuzz"
        workload.scene.validate()
        workload.camera(0)

    def test_cli_resolver_accepts_fuzz_requests(self):
        from repro.cli import _resolve_workload

        assert _resolve_workload("fuzz@7:grazing").name \
            == resolve_workload("fuzz@7:grazing").name


class TestParallelDeterminism:
    def test_jobs2_metrics_match_serial(self, tmp_path):
        """A fuzz workload through the process pool is byte-identical
        to the serial backend — the property that lets fleet cells vary
        the jobs axis without perturbing every other metric."""
        from repro.engine.jobs import eval_job
        from repro.experiments.runner import ExperimentContext

        request = "fuzz@5"
        plan = [eval_job(request, 0, "baseline", 1.0),
                eval_job(request, 0, "patu", 0.4)]
        results = {}
        for jobs in (1, 2):
            with ExperimentContext(
                scale=0.25, frames=1, workloads=(request,), jobs=jobs,
                capture_cache=tmp_path / f"captures{jobs}",
            ) as ctx:
                report = ctx.execute(plan)
                assert report.failed == 0
                results[jobs] = (
                    ctx.frame_metrics(request, 0, "baseline", 1.0),
                    ctx.frame_metrics(request, 0, "patu", 0.4),
                )
        assert results[1] == results[2]
