"""Tests for procedural texture synthesis."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads.proctex import (
    asphalt_texture,
    brick_texture,
    checker_texture,
    dirt_texture,
    facade_texture,
    fbm_noise,
    grass_texture,
    metal_texture,
    noise_texture,
    stone_texture,
    water_texture,
    wood_texture,
)

ALL_GENERATORS = (
    asphalt_texture,
    brick_texture,
    dirt_texture,
    facade_texture,
    grass_texture,
    metal_texture,
    noise_texture,
    stone_texture,
    water_texture,
    wood_texture,
)


class TestFbmNoise:
    def test_deterministic(self):
        a = fbm_noise(64, seed=3)
        b = fbm_noise(64, seed=3)
        assert np.array_equal(a, b)

    def test_seed_changes_content(self):
        assert not np.array_equal(fbm_noise(64, 1), fbm_noise(64, 2))

    def test_range(self):
        n = fbm_noise(128, seed=7)
        assert n.min() >= 0.0 and n.max() <= 1.0

    def test_rejects_non_power_of_two(self):
        with pytest.raises(WorkloadError):
            fbm_noise(100, seed=1)


class TestGenerators:
    @pytest.mark.parametrize("gen", ALL_GENERATORS, ids=lambda g: g.__name__)
    def test_output_is_valid_texture(self, gen):
        tex = gen(f"t_{gen.__name__}", size=64)
        assert tex.width == tex.height == 64
        assert tex.data.shape == (64, 64, 4)
        assert np.isfinite(tex.data).all()

    @pytest.mark.parametrize("gen", ALL_GENERATORS, ids=lambda g: g.__name__)
    def test_deterministic(self, gen):
        a = gen("a", size=64)
        b = gen("a", size=64)
        assert np.array_equal(a.data, b.data)

    @pytest.mark.parametrize("gen", ALL_GENERATORS, ids=lambda g: g.__name__)
    def test_has_high_frequency_contrast(self, gen):
        """Every game texture must keep AF perceptually relevant: the
        base level needs non-trivial local contrast."""
        tex = gen("c", size=128)
        luma = tex.data[..., :3].mean(axis=2)
        local_diff = max(
            np.abs(np.diff(luma, axis=1)).mean(),
            np.abs(np.diff(luma, axis=0)).mean(),
        )
        assert local_diff > 0.005

    def test_checker_exact_pattern(self):
        tex = checker_texture("chk", size=16, tiles=4,
                              color_a=(1, 1, 1), color_b=(0, 0, 0))
        assert np.allclose(tex.data[0, 0, :3], 1.0)
        assert np.allclose(tex.data[0, 4, :3], 0.0)
        assert np.allclose(tex.data[4, 4, :3], 1.0)

    def test_checker_rejects_bad_tiles(self):
        with pytest.raises(WorkloadError):
            checker_texture("chk", size=16, tiles=5)

    def test_facade_windows_have_lit_and_unlit(self):
        tex = facade_texture("f", size=128, seed=1)
        # Lit windows are warm yellow; unlit are dark blue.
        lit = (tex.data[..., 0] > 0.9) & (tex.data[..., 2] < 0.6)
        dark = (tex.data[..., 0] < 0.2) & (tex.data[..., 2] > 0.15)
        assert lit.any() and dark.any()
