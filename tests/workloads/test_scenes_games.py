"""Tests for scenes, workloads and the Table II game registry."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.geometry.mesh import make_box
from repro.workloads.games import (
    GAME_WORKLOADS,
    get_workload,
    workload_names,
)
from repro.workloads.rbench import RBENCH_RESOLUTIONS, rbench_workload
from repro.workloads.scene import Scene


class TestScene:
    def test_validate_catches_missing_texture(self):
        scene = Scene()
        scene.add(make_box((0, 0, 0), (1, 1, 1), "ghost"))
        with pytest.raises(WorkloadError):
            scene.validate()

    def test_duplicate_texture_rejected(self):
        from repro.workloads.proctex import checker_texture

        scene = Scene()
        scene.add_texture(checker_texture("dup", size=16, tiles=4))
        with pytest.raises(WorkloadError):
            scene.add_texture(checker_texture("dup", size=16, tiles=4))

    def test_empty_scene_invalid(self):
        with pytest.raises(WorkloadError):
            Scene().validate()


class TestTable2Registry:
    def test_eleven_configurations(self):
        # 3 HL2 + 3 doom3 + grid + nfs + stal + ut3 + wolf.
        assert len(workload_names()) == 11

    def test_paper_resolutions(self):
        names = workload_names()
        assert "HL2-1600x1200" in names
        assert "doom3-640x480" in names
        assert "stal-1280x1024" in names
        assert "wolf-640x480" in names

    def test_libraries_match_table2(self):
        assert get_workload("doom3-1280x1024").library == "OpenGL"
        assert get_workload("HL2-1600x1200").library == "DirectX3D"

    def test_scene_shared_between_resolutions(self):
        a = get_workload("HL2-1600x1200")
        b = get_workload("HL2-640x480")
        assert a.scene is b.scene

    def test_unknown_workload_helpful_error(self):
        with pytest.raises(WorkloadError, match="unknown workload"):
            get_workload("quake-640x480")

    @pytest.mark.parametrize("name", list(GAME_WORKLOADS))
    def test_every_scene_is_valid(self, name):
        wl = GAME_WORKLOADS[name]
        wl.scene.validate()
        assert wl.scene.total_triangles > 0
        assert len(wl.scene.textures) >= 3

    @pytest.mark.parametrize("name", list(GAME_WORKLOADS))
    def test_camera_paths_cover_all_frames(self, name):
        wl = GAME_WORKLOADS[name]
        cams = [wl.camera(i) for i in range(wl.num_frames)]
        eyes = {tuple(np.round(c.eye, 6)) for c in cams}
        assert len(eyes) == wl.num_frames  # camera actually moves
        with pytest.raises(WorkloadError):
            wl.camera(wl.num_frames)


class TestScaledSize:
    def test_full_scale_keeps_resolution(self):
        wl = get_workload("HL2-1600x1200")
        assert wl.scaled_size(1.0) == (1600, 1200)

    def test_quarter_scale(self):
        wl = get_workload("HL2-1600x1200")
        w, h = wl.scaled_size(0.25)
        assert (w, h) == (400, 300)
        assert w % 4 == 0 and h % 4 == 0

    def test_floor_of_32(self):
        wl = get_workload("wolf-640x480")
        w, h = wl.scaled_size(0.01)
        assert w >= 32 and h >= 32

    def test_rejects_bad_scale(self):
        with pytest.raises(WorkloadError):
            get_workload("wolf-640x480").scaled_size(0.0)


class TestRBench:
    def test_resolutions(self):
        assert RBENCH_RESOLUTIONS["2K"] == (2560, 1440)
        assert RBENCH_RESOLUTIONS["4K"] == (3840, 2160)

    def test_workload_builds(self):
        wl = rbench_workload("2K", num_frames=3)
        assert wl.num_frames == 3
        wl.scene.validate()

    def test_unknown_resolution(self):
        with pytest.raises(WorkloadError):
            rbench_workload("8K")
