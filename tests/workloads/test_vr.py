"""Tests for the stereo (VR) workload extension."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads.games import get_workload
from repro.workloads.vr import vr_workload


class TestStereoConstruction:
    def test_doubles_frames(self):
        base = get_workload("wolf-640x480")
        stereo = vr_workload("wolf-640x480")
        assert stereo.num_frames == 2 * base.num_frames
        assert stereo.abbr == "VR-wolf"
        assert stereo.scene is base.scene

    def test_time_steps_limit(self):
        stereo = vr_workload("wolf-640x480", time_steps=3)
        assert stereo.num_frames == 6
        with pytest.raises(WorkloadError):
            vr_workload("wolf-640x480", time_steps=100)

    def test_rejects_bad_ipd(self):
        with pytest.raises(WorkloadError):
            vr_workload("wolf-640x480", ipd=0.0)


class TestEyeGeometry:
    def test_eyes_separated_by_ipd(self):
        stereo = vr_workload("wolf-640x480", ipd=0.1)
        left = np.asarray(stereo.camera(0).eye)
        right = np.asarray(stereo.camera(1).eye)
        assert np.linalg.norm(right - left) == pytest.approx(0.1)

    def test_eyes_share_view_direction(self):
        stereo = vr_workload("doom3-640x480")
        left = stereo.camera(0)
        right = stereo.camera(1)
        d_left = np.asarray(left.target) - np.asarray(left.eye)
        d_right = np.asarray(right.target) - np.asarray(right.eye)
        assert np.allclose(d_left, d_right)

    def test_midpoint_is_base_camera(self):
        base = get_workload("wolf-640x480")
        stereo = vr_workload("wolf-640x480")
        mid = (
            np.asarray(stereo.camera(0).eye) + np.asarray(stereo.camera(1).eye)
        ) / 2
        assert np.allclose(mid, np.asarray(base.camera(0).eye), atol=1e-12)

    def test_offset_is_horizontal(self):
        stereo = vr_workload("wolf-640x480")
        left = np.asarray(stereo.camera(0).eye)
        right = np.asarray(stereo.camera(1).eye)
        # The camera's up is +Y; eye offset must be perpendicular to it.
        assert (right - left)[1] == pytest.approx(0.0, abs=1e-12)

    def test_time_advances_every_two_frames(self):
        stereo = vr_workload("wolf-640x480")
        eye0 = np.asarray(stereo.camera(0).eye)
        eye2 = np.asarray(stereo.camera(2).eye)
        assert not np.allclose(eye0, eye2)


class TestStereoRendering:
    def test_eyes_agree_on_approximation(self, session):
        """The paper-level claim the extension experiment relies on."""
        from repro.core.scenarios import SCENARIOS
        from repro.renderer.session import RenderSession

        small = RenderSession(scale=1.0, scale_caches=False)
        stereo = vr_workload("wolf-640x480", time_steps=1)
        rates = []
        for frame in (0, 1):
            # Render at a very small size for speed.
            import dataclasses

            tiny = dataclasses.replace(stereo, width=128, height=96)
            capture = small.capture_frame(tiny, frame)
            r = small.evaluate(capture, SCENARIOS["patu"], 0.4)
            rates.append(r.approximation_rate)
        assert rates[0] == pytest.approx(rates[1], abs=0.1)
